"""``RemoteSearcherClient``: pooled, retrying RPC client for one searcher.

The broker's fan-out threads call this client synchronously (one RPC per
shard per batch); reliability is layered as:

- **connection pool** -- a small stack of idle sockets per searcher, so
  concurrent batches from the fan-out pool don't serialize on one
  connection and repeated requests skip the TCP handshake;
- **request timeouts** -- every send/recv honors the per-call deadline
  (and the client-wide ``timeout_s`` fallback); an expired deadline
  raises :class:`~repro.errors.DeadlineExceededError`;
- **bounded retries with backoff** -- connectivity failures (refused,
  reset, EOF, garbled frames) retry idempotent calls up to ``retries``
  times, reconnecting with exponential backoff plus *full jitter*
  (uniform in ``[0, delay]``, seeded per client) so the retries of many
  brokers hitting one recovering searcher spread out instead of
  arriving in synchronized waves.  Timeouts and server-side
  :class:`~repro.errors.RemoteCallError` s never retry: the former
  would double tail latency, the latter would repeat a bug.

A dead connection is always discarded, never returned to the pool, so
one crash can't poison later requests.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time
import zlib

import numpy as np

from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    ProtocolError,
    TransportError,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    MsgType,
    raise_if_error,
    read_frame_async,
    recv_frame,
    send_frame,
    write_frame_async,
)

#: Failures that mean "the searcher is unreachable/broken", as opposed to
#: "the searcher answered with an error".  The broker's ``degrade``
#: policy drops a shard on exactly these.
CONNECTIVITY_FAILURES = (
    ConnectionLostError,
    ProtocolError,
    DeadlineExceededError,
)


def _search_header(
    index_name: str,
    k: int,
    ef: int | None,
    probes: list[tuple[int, ...]] | None,
    trace_ctx: dict | None = None,
    collect_cost: bool = False,
    deadline: float | None = None,
) -> dict:
    """SEARCH frame header; ``probes`` is the router's per-row segment
    push-down, ``trace_ctx`` the broker's trace context (the searcher
    then returns its span tree in the RESULT header) and ``collect_cost``
    asks for per-batch search-cost counters.  ``deadline`` (absolute
    ``time.monotonic()``) ships as ``deadline_ms`` *remaining* budget --
    monotonic clocks don't compare across hosts, a relative budget does
    -- so the searcher can reject already-expired work before burning
    CPU on it.  All extras are omitted entirely when absent (old servers
    ignore unknown keys, so the fields are wire-compatible both ways)."""
    header = {"index": str(index_name), "top_k": int(k), "ef": ef}
    if probes is not None:
        header["probes"] = [
            [int(segment) for segment in row] for row in probes
        ]
    if trace_ctx is not None:
        header["trace"] = dict(trace_ctx)
    if collect_cost:
        header["cost"] = True
    if deadline is not None:
        remaining_ms = (deadline - time.monotonic()) * 1e3
        header["deadline_ms"] = max(remaining_ms, 0.0)
    return header


def _fill_info_out(info_out: dict | None, header: dict) -> None:
    """Copy a RESULT header's observability extras into the out-param."""
    if info_out is None:
        return
    for key in ("cost", "trace"):
        if key in header:
            info_out[key] = header[key]


def parse_address(address: str | tuple) -> tuple[str, int]:
    """``"host:port"`` (or an ``(host, port)`` pair) -> ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, _, port = str(address).strip().rpartition(":")
    if not host or not port:
        raise ValueError(
            f"searcher address {address!r} is not of the form host:port"
        )
    return host, int(port)


class RemoteSearcherClient:
    """RPC client for one remote searcher process.

    Parameters
    ----------
    address:
        ``"host:port"`` string or ``(host, port)`` tuple.
    timeout_s:
        Default per-request time budget when the caller passes no
        deadline (connect + send + receive).
    connect_timeout_s:
        Budget for establishing one TCP connection.
    pool_size:
        Idle connections kept per searcher.  More concurrent requests
        than this still work -- extras dial fresh connections and the
        surplus is closed on return.
    retries:
        Connectivity-failure retries for idempotent calls.
    backoff_s / backoff_max_s:
        Reconnect backoff ceiling schedule: retry ``n`` waits a uniform
        random ("full jitter") slice of ``min(backoff_s * 2**n,
        backoff_max_s)``.
    backoff_seed:
        Seed for the jitter RNG; defaults to a per-address hash so each
        client desynchronizes deterministically without configuration.
    """

    def __init__(
        self,
        address: str | tuple,
        *,
        timeout_s: float = 30.0,
        connect_timeout_s: float = 5.0,
        pool_size: int = 2,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_max_s: float = 1.0,
        backoff_seed: int | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        if timeout_s <= 0 or connect_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host, self.port = parse_address(address)
        self.timeout_s = float(timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.pool_size = int(pool_size)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)
        self._backoff_rng = random.Random(
            zlib.crc32(self.address.encode())
            if backoff_seed is None
            else backoff_seed
        )
        self.max_frame = int(max_frame)
        self._lock = threading.Lock()
        self._idle: list[socket.socket] = []
        self._closed = False
        #: Lifetime counters: rows answered, RPCs sent, reconnects,
        #: retries.  Bumped under ``_lock``: the fan-out pool calls one
        #: client from several threads and ``+=`` is not atomic.
        self.queries_served = 0
        self.requests_sent = 0
        self.connects = 0
        self.retried = 0

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def _jitter(self, delay: float) -> float:
        """Full-jitter backoff draw: uniform in ``[0, delay]``.

        Pure exponential doubling makes every client that failed at the
        same instant retry at the same instants forever -- a retry storm
        that re-knocks a recovering searcher over.  Locked because the
        fan-out pool drives one client from several threads and
        ``random.Random`` state updates are not atomic.
        """
        with self._lock:
            return self._backoff_rng.uniform(0.0, delay)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection management ---------------------------------------------------------
    def _dial(self, deadline: float | None) -> socket.socket:
        budget = self.connect_timeout_s
        if deadline is not None:
            budget = min(budget, self._remaining(deadline))
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=budget
            )
        except TimeoutError:
            # A blown *caller* deadline must not retry; a plain connect
            # timeout (SYN dropped: firewall, host mid-reboot) is a
            # connectivity failure like refused/reset and should get the
            # same bounded retries.
            if deadline is not None and deadline - time.monotonic() <= 0:
                raise DeadlineExceededError(
                    f"connect to {self.address} timed out after "
                    f"{budget:.3f}s"
                ) from None
            raise ConnectionLostError(
                f"connect to {self.address} timed out after {budget:.3f}s"
            ) from None
        except OSError as exc:
            raise ConnectionLostError(
                f"cannot connect to searcher {self.address}: {exc}"
            ) from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._count("connects")
        return sock

    def _checkout(self, deadline: float | None) -> socket.socket:
        with self._lock:
            if self._closed:
                raise ConnectionLostError(
                    f"client for {self.address} is closed"
                )
            if self._idle:
                return self._idle.pop()
        return self._dial(deadline)

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.pool_size:
                self._idle.append(sock)
                return
        _close_quietly(sock)

    def close(self) -> None:
        """Close every pooled connection; the client rejects further calls."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for sock in idle:
            _close_quietly(sock)

    # -- core call machinery -----------------------------------------------------------
    @staticmethod
    def _remaining(deadline: float) -> float:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceededError("request deadline already expired")
        return remaining

    def _once(
        self,
        msg_type: MsgType,
        header: dict,
        arrays: tuple,
        deadline: float | None,
    ) -> tuple[MsgType, dict, list[np.ndarray]]:
        sock = self._checkout(deadline)
        budget = self.timeout_s
        if deadline is not None:
            budget = min(budget, self._remaining(deadline))
        # One *cumulative* budget for the whole round trip: the send
        # gets it as a socket timeout, and recv_frame re-arms the
        # shrinking remainder before every read, so neither a slow send
        # nor a byte-trickling peer can stretch one RPC past `budget`.
        attempt_deadline = time.monotonic() + budget
        try:
            sock.settimeout(budget)
            send_frame(sock, msg_type, header, arrays)
            response = recv_frame(
                sock, max_frame=self.max_frame, deadline=attempt_deadline
            )
        except TimeoutError:
            _close_quietly(sock)
            raise DeadlineExceededError(
                f"searcher {self.address} did not answer within "
                f"{budget:.3f}s"
            ) from None
        except TransportError:
            _close_quietly(sock)
            raise
        except OSError as exc:
            _close_quietly(sock)
            raise ConnectionLostError(
                f"connection to searcher {self.address} failed: {exc}"
            ) from None
        self._checkin(sock)
        return response

    def call(
        self,
        msg_type: MsgType,
        header: dict | None = None,
        arrays: tuple = (),
        *,
        deadline: float | None = None,
        idempotent: bool = True,
    ) -> tuple[MsgType, dict, list[np.ndarray]]:
        """One RPC round trip; returns ``(msg_type, header, arrays)``.

        ``deadline`` is an absolute ``time.monotonic()`` instant shared
        across retries.  Error frames raise
        :class:`~repro.errors.RemoteCallError` (never retried).
        """
        header = header or {}
        attempts = (self.retries + 1) if idempotent else 1
        delay = self.backoff_s
        last: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self._count("retried")
                pause = self._jitter(delay)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        # The deadline died during backoff: the timeout
                        # is a symptom.  Keep the connectivity failure
                        # that drove the retries as the cause, or a
                        # refused connection reads as a slow searcher.
                        raise DeadlineExceededError(
                            "request deadline expired during retry backoff"
                        ) from last
                    pause = min(pause, remaining)
                time.sleep(max(pause, 0.0))
                delay = min(delay * 2.0, self.backoff_max_s)
            try:
                self._count("requests_sent")
                resp_type, resp_header, resp_arrays = self._once(
                    msg_type, header, arrays, deadline
                )
            except DeadlineExceededError as exc:
                # Retrying a blown budget only makes it later.  Chain
                # the connectivity error from earlier attempts (an
                # expired deadline discovered inside _dial/_once raises
                # bare) so the real cause isn't masked as a timeout.
                if last is not None and exc.__cause__ is None:
                    raise exc from last
                raise
            except (ConnectionLostError, ProtocolError) as exc:
                last = exc
                continue
            raise_if_error(resp_type, resp_header)
            return resp_type, resp_header, resp_arrays
        assert last is not None
        raise last

    # -- the searcher RPC surface ------------------------------------------------------
    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        deadline: float | None = None,
        probes: list[tuple[int, ...]] | None = None,
        trace_ctx: dict | None = None,
        collect_cost: bool = False,
        info_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Remote lockstep shard search; mirrors ``SearcherNode.search_batch``.

        ``info_out``, when given, receives the RESULT header's ``cost``
        (search-cost counters) and ``trace`` (searcher span tree)
        entries -- present only when the request asked for them *and*
        the server speaks protocol v2.
        """
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        _, header, arrays = self.call(
            MsgType.SEARCH,
            _search_header(
                index_name,
                k,
                ef,
                probes,
                trace_ctx,
                collect_cost,
                deadline=deadline,
            ),
            (queries,),
            deadline=deadline,
        )
        _fill_info_out(info_out, header)
        if len(arrays) != 2:
            raise ProtocolError(
                f"search result carries {len(arrays)} arrays, expected 2"
            )
        ids = np.asarray(arrays[0], dtype=np.int64)
        dists = np.asarray(arrays[1], dtype=np.float64)
        want = (queries.shape[0], int(k))
        if ids.shape != want or dists.shape != want:
            raise ProtocolError(
                f"search result shapes {ids.shape}/{dists.shape} do not "
                f"match the requested {want}"
            )
        self._count("queries_served", queries.shape[0])
        return ids, dists

    def deploy(
        self,
        index_name: str,
        index_path: str,
        *,
        root: str | None = None,
        deadline: float | None = None,
    ) -> list[str]:
        """Host this searcher's shard of an exported index (not retried)."""
        _, header, _ = self.call(
            MsgType.DEPLOY,
            {"index": str(index_name), "path": str(index_path), "root": root},
            deadline=deadline,
            idempotent=False,
        )
        return list(header.get("hosted", []))

    def undeploy(
        self, index_name: str, *, deadline: float | None = None
    ) -> list[str]:
        """Unhost an index (not retried)."""
        _, header, _ = self.call(
            MsgType.UNDEPLOY,
            {"index": str(index_name)},
            deadline=deadline,
            idempotent=False,
        )
        return list(header.get("hosted", []))

    def stats(self, *, deadline: float | None = None) -> dict:
        """The remote node's counters (see ``SearcherNode.stats``)."""
        _, header, _ = self.call(MsgType.STATS, deadline=deadline)
        return dict(header.get("stats", {}))

    def ping(self, *, deadline: float | None = None) -> int:
        """Liveness probe; returns the remote node's shard id."""
        _, header, _ = self.call(MsgType.PING, deadline=deadline)
        return int(header["shard_id"])

    def __repr__(self) -> str:
        return f"RemoteSearcherClient({self.address!r})"


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


class AsyncRemoteSearcherClient:
    """Asyncio RPC client for one remote searcher process.

    The event-loop counterpart of :class:`RemoteSearcherClient`: same
    framing (:func:`~repro.net.protocol.read_frame_async` /
    :func:`~repro.net.protocol.write_frame_async`), same deadline and
    retry semantics, but every RPC is a coroutine, so a broker can keep
    N shard requests in flight on **one** event-loop thread instead of
    burning a pool thread per RPC.

    Connections are pooled *per event loop*: an asyncio stream is bound
    to the loop that opened it, and one client instance may be driven by
    several brokers (the service shares its transports across deployed
    indices), each owning its own loop.  Checkout inside a coroutine
    always hands back a connection opened on the running loop.

    Cancellation safety -- what hedging leans on: an RPC cancelled
    mid-flight (the hedge race's loser) always **discards** its
    connection instead of pooling it, because the abandoned response is
    still in the pipe and would poison whatever request checked the
    connection out next.  Closing the socket also tells the searcher to
    stop caring about the abandoned request's answer.
    """

    def __init__(
        self,
        address: str | tuple,
        *,
        timeout_s: float = 30.0,
        connect_timeout_s: float = 5.0,
        pool_size: int = 2,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_max_s: float = 1.0,
        backoff_seed: int | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        if timeout_s <= 0 or connect_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host, self.port = parse_address(address)
        self.timeout_s = float(timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.pool_size = int(pool_size)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)
        self._backoff_rng = random.Random(
            zlib.crc32(self.address.encode())
            if backoff_seed is None
            else backoff_seed
        )
        self.max_frame = int(max_frame)
        self._lock = threading.Lock()
        self._pools: dict[object, list[tuple]] = {}
        self._closed = False
        #: Lifetime counters, mirroring :class:`RemoteSearcherClient`;
        #: ``connects - closes`` is the live-socket gauge the
        #: no-connection-leak tests pin.
        self.queries_served = 0
        self.requests_sent = 0
        self.connects = 0
        self.closes = 0
        self.retried = 0

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def _jitter(self, delay: float) -> float:
        """Full-jitter backoff draw (see the sync client's ``_jitter``)."""
        with self._lock:
            return self._backoff_rng.uniform(0.0, delay)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def open_connections(self) -> int:
        """Sockets this client currently holds open (pooled + in flight)."""
        with self._lock:
            return self.connects - self.closes

    # -- connection management ---------------------------------------------------------
    async def _dial(self, deadline: float | None) -> tuple:
        budget = self.connect_timeout_s
        if deadline is not None:
            budget = min(budget, self._remaining(deadline))
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), budget
            )
        except (asyncio.TimeoutError, TimeoutError):
            if deadline is not None and deadline - time.monotonic() <= 0:
                raise DeadlineExceededError(
                    f"connect to {self.address} timed out after "
                    f"{budget:.3f}s"
                ) from None
            raise ConnectionLostError(
                f"connect to {self.address} timed out after {budget:.3f}s"
            ) from None
        except OSError as exc:
            raise ConnectionLostError(
                f"cannot connect to searcher {self.address}: {exc}"
            ) from None
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._count("connects")
        return reader, writer

    async def _checkout(self, deadline: float | None) -> tuple:
        self._reap_dead_pools()
        loop = asyncio.get_running_loop()
        with self._lock:
            if self._closed:
                raise ConnectionLostError(
                    f"client for {self.address} is closed"
                )
            pool = self._pools.setdefault(loop, [])
            if pool:
                return pool.pop()
        return await self._dial(deadline)

    def _checkin(self, conn: tuple, loop) -> None:
        self._reap_dead_pools()
        with self._lock:
            if not self._closed:
                pool = self._pools.setdefault(loop, [])
                if len(pool) < self.pool_size:
                    pool.append(conn)
                    return
        self._discard(conn)

    def _reap_dead_pools(self) -> None:
        """Drop pools whose event loop is gone.

        One client outlives any single broker (the service shares its
        transports across deployed indices), so when a broker's fan-out
        loop closes, the connections checked in under it would
        otherwise linger unreachable -- every deploy/undeploy cycle
        leaking ``pool_size`` sockets per searcher.
        """
        with self._lock:
            dead = [loop for loop in self._pools if loop.is_closed()]
            reaped = [(loop, self._pools.pop(loop)) for loop in dead]
        for loop, pool in reaped:
            for conn in pool:
                self._close_stream(loop, conn[1])

    def _discard(self, conn: tuple) -> None:
        _, writer = conn
        try:
            writer.close()
        except (OSError, RuntimeError):
            # Already-dead transport or already-closed event loop: the
            # connection is gone either way, which is all close() wanted.
            pass
        self._count("closes")

    def _close_stream(self, loop, writer) -> None:
        """Close a pooled stream from any thread, loop alive or not."""
        try:
            loop.call_soon_threadsafe(writer.close)
        except RuntimeError:
            # Loop already gone: close the underlying socket *object*
            # (idempotent, so the transport destructor's double-close
            # is a no-op -- unlike closing the raw fd, which could hit
            # a reused descriptor number).
            raw = getattr(getattr(writer, "transport", None), "_sock", None)
            if raw is not None:
                _close_quietly(raw)
        self._count("closes")

    def close(self) -> None:
        """Close every pooled connection; the client rejects further calls.

        Callable from any thread: pooled streams are closed via their
        owning loop when it is still running, or at the socket level
        when the loop is already gone (broker shut down first).
        """
        with self._lock:
            self._closed = True
            pools, self._pools = self._pools, {}
        for loop, pool in pools.items():
            for _, writer in pool:
                self._close_stream(loop, writer)

    # -- core call machinery -----------------------------------------------------------
    @staticmethod
    def _remaining(deadline: float) -> float:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceededError("request deadline already expired")
        return remaining

    async def _roundtrip(self, conn: tuple, msg_type, header, arrays):
        reader, writer = conn
        await write_frame_async(writer, msg_type, header, arrays)
        return await read_frame_async(reader, max_frame=self.max_frame)

    async def _once(
        self,
        msg_type: MsgType,
        header: dict,
        arrays: tuple,
        deadline: float | None,
    ) -> tuple[MsgType, dict, list[np.ndarray]]:
        conn = await self._checkout(deadline)
        loop = asyncio.get_running_loop()
        budget = self.timeout_s
        if deadline is not None:
            try:
                budget = min(budget, self._remaining(deadline))
            except DeadlineExceededError:
                self._checkin(conn, loop)
                raise
        try:
            response = await asyncio.wait_for(
                self._roundtrip(conn, msg_type, header, arrays), budget
            )
        except (asyncio.TimeoutError, TimeoutError):
            self._discard(conn)
            raise DeadlineExceededError(
                f"searcher {self.address} did not answer within "
                f"{budget:.3f}s"
            ) from None
        except asyncio.CancelledError:
            # A cancelled RPC (hedge loser, torn-down fan-out) leaves
            # its response in the pipe: never pool this connection.
            self._discard(conn)
            raise
        except TransportError:
            self._discard(conn)
            raise
        except OSError as exc:
            self._discard(conn)
            raise ConnectionLostError(
                f"connection to searcher {self.address} failed: {exc}"
            ) from None
        self._checkin(conn, loop)
        return response

    async def call(
        self,
        msg_type: MsgType,
        header: dict | None = None,
        arrays: tuple = (),
        *,
        deadline: float | None = None,
        idempotent: bool = True,
    ) -> tuple[MsgType, dict, list[np.ndarray]]:
        """One RPC round trip; same semantics as the sync client's."""
        header = header or {}
        attempts = (self.retries + 1) if idempotent else 1
        delay = self.backoff_s
        last: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self._count("retried")
                pause = self._jitter(delay)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise DeadlineExceededError(
                            "request deadline expired during retry backoff"
                        ) from last
                    pause = min(pause, remaining)
                await asyncio.sleep(max(pause, 0.0))
                delay = min(delay * 2.0, self.backoff_max_s)
            try:
                self._count("requests_sent")
                resp_type, resp_header, resp_arrays = await self._once(
                    msg_type, header, arrays, deadline
                )
            except DeadlineExceededError as exc:
                if last is not None and exc.__cause__ is None:
                    raise exc from last
                raise
            except (ConnectionLostError, ProtocolError) as exc:
                last = exc
                continue
            raise_if_error(resp_type, resp_header)
            return resp_type, resp_header, resp_arrays
        assert last is not None
        raise last

    # -- the searcher RPC surface ------------------------------------------------------
    async def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        deadline: float | None = None,
        probes: list[tuple[int, ...]] | None = None,
        trace_ctx: dict | None = None,
        collect_cost: bool = False,
        info_out: dict | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Remote lockstep shard search (async twin of the sync client's)."""
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        _, header, arrays = await self.call(
            MsgType.SEARCH,
            _search_header(
                index_name,
                k,
                ef,
                probes,
                trace_ctx,
                collect_cost,
                deadline=deadline,
            ),
            (queries,),
            deadline=deadline,
        )
        _fill_info_out(info_out, header)
        if len(arrays) != 2:
            raise ProtocolError(
                f"search result carries {len(arrays)} arrays, expected 2"
            )
        ids = np.asarray(arrays[0], dtype=np.int64)
        dists = np.asarray(arrays[1], dtype=np.float64)
        want = (queries.shape[0], int(k))
        if ids.shape != want or dists.shape != want:
            raise ProtocolError(
                f"search result shapes {ids.shape}/{dists.shape} do not "
                f"match the requested {want}"
            )
        self._count("queries_served", queries.shape[0])
        return ids, dists

    async def ping(self, *, deadline: float | None = None) -> int:
        """Liveness probe; returns the remote node's shard id."""
        _, header, _ = await self.call(MsgType.PING, deadline=deadline)
        return int(header["shard_id"])

    def __repr__(self) -> str:
        return f"AsyncRemoteSearcherClient({self.address!r})"
