"""``RemoteSearcherClient``: pooled, retrying RPC client for one searcher.

The broker's fan-out threads call this client synchronously (one RPC per
shard per batch); reliability is layered as:

- **connection pool** -- a small stack of idle sockets per searcher, so
  concurrent batches from the fan-out pool don't serialize on one
  connection and repeated requests skip the TCP handshake;
- **request timeouts** -- every send/recv honors the per-call deadline
  (and the client-wide ``timeout_s`` fallback); an expired deadline
  raises :class:`~repro.errors.DeadlineExceededError`;
- **bounded retries with backoff** -- connectivity failures (refused,
  reset, EOF, garbled frames) retry idempotent calls up to ``retries``
  times, reconnecting with exponential backoff.  Timeouts and
  server-side :class:`~repro.errors.RemoteCallError` s never retry: the
  former would double tail latency, the latter would repeat a bug.

A dead connection is always discarded, never returned to the pool, so
one crash can't poison later requests.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np

from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    ProtocolError,
    TransportError,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    MsgType,
    raise_if_error,
    recv_frame,
    send_frame,
)

#: Failures that mean "the searcher is unreachable/broken", as opposed to
#: "the searcher answered with an error".  The broker's ``degrade``
#: policy drops a shard on exactly these.
CONNECTIVITY_FAILURES = (
    ConnectionLostError,
    ProtocolError,
    DeadlineExceededError,
)


def parse_address(address: str | tuple) -> tuple[str, int]:
    """``"host:port"`` (or an ``(host, port)`` pair) -> ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, _, port = str(address).strip().rpartition(":")
    if not host or not port:
        raise ValueError(
            f"searcher address {address!r} is not of the form host:port"
        )
    return host, int(port)


class RemoteSearcherClient:
    """RPC client for one remote searcher process.

    Parameters
    ----------
    address:
        ``"host:port"`` string or ``(host, port)`` tuple.
    timeout_s:
        Default per-request time budget when the caller passes no
        deadline (connect + send + receive).
    connect_timeout_s:
        Budget for establishing one TCP connection.
    pool_size:
        Idle connections kept per searcher.  More concurrent requests
        than this still work -- extras dial fresh connections and the
        surplus is closed on return.
    retries:
        Connectivity-failure retries for idempotent calls.
    backoff_s / backoff_max_s:
        Reconnect backoff: first retry waits ``backoff_s``, doubling up
        to ``backoff_max_s``.
    """

    def __init__(
        self,
        address: str | tuple,
        *,
        timeout_s: float = 30.0,
        connect_timeout_s: float = 5.0,
        pool_size: int = 2,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_max_s: float = 1.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        if timeout_s <= 0 or connect_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host, self.port = parse_address(address)
        self.timeout_s = float(timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.pool_size = int(pool_size)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)
        self.max_frame = int(max_frame)
        self._lock = threading.Lock()
        self._idle: list[socket.socket] = []
        self._closed = False
        #: Lifetime counters: rows answered, RPCs sent, reconnects,
        #: retries.  Bumped under ``_lock``: the fan-out pool calls one
        #: client from several threads and ``+=`` is not atomic.
        self.queries_served = 0
        self.requests_sent = 0
        self.connects = 0
        self.retried = 0

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection management ---------------------------------------------------------
    def _dial(self, deadline: float | None) -> socket.socket:
        budget = self.connect_timeout_s
        if deadline is not None:
            budget = min(budget, self._remaining(deadline))
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=budget
            )
        except TimeoutError:
            # A blown *caller* deadline must not retry; a plain connect
            # timeout (SYN dropped: firewall, host mid-reboot) is a
            # connectivity failure like refused/reset and should get the
            # same bounded retries.
            if deadline is not None and deadline - time.monotonic() <= 0:
                raise DeadlineExceededError(
                    f"connect to {self.address} timed out after "
                    f"{budget:.3f}s"
                ) from None
            raise ConnectionLostError(
                f"connect to {self.address} timed out after {budget:.3f}s"
            ) from None
        except OSError as exc:
            raise ConnectionLostError(
                f"cannot connect to searcher {self.address}: {exc}"
            ) from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._count("connects")
        return sock

    def _checkout(self, deadline: float | None) -> socket.socket:
        with self._lock:
            if self._closed:
                raise ConnectionLostError(
                    f"client for {self.address} is closed"
                )
            if self._idle:
                return self._idle.pop()
        return self._dial(deadline)

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.pool_size:
                self._idle.append(sock)
                return
        _close_quietly(sock)

    def close(self) -> None:
        """Close every pooled connection; the client rejects further calls."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for sock in idle:
            _close_quietly(sock)

    # -- core call machinery -----------------------------------------------------------
    @staticmethod
    def _remaining(deadline: float) -> float:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeadlineExceededError("request deadline already expired")
        return remaining

    def _once(
        self,
        msg_type: MsgType,
        header: dict,
        arrays: tuple,
        deadline: float | None,
    ) -> tuple[MsgType, dict, list[np.ndarray]]:
        sock = self._checkout(deadline)
        budget = self.timeout_s
        if deadline is not None:
            budget = min(budget, self._remaining(deadline))
        # One *cumulative* budget for the whole round trip: the send
        # gets it as a socket timeout, and recv_frame re-arms the
        # shrinking remainder before every read, so neither a slow send
        # nor a byte-trickling peer can stretch one RPC past `budget`.
        attempt_deadline = time.monotonic() + budget
        try:
            sock.settimeout(budget)
            send_frame(sock, msg_type, header, arrays)
            response = recv_frame(
                sock, max_frame=self.max_frame, deadline=attempt_deadline
            )
        except TimeoutError:
            _close_quietly(sock)
            raise DeadlineExceededError(
                f"searcher {self.address} did not answer within "
                f"{budget:.3f}s"
            ) from None
        except TransportError:
            _close_quietly(sock)
            raise
        except OSError as exc:
            _close_quietly(sock)
            raise ConnectionLostError(
                f"connection to searcher {self.address} failed: {exc}"
            ) from None
        self._checkin(sock)
        return response

    def call(
        self,
        msg_type: MsgType,
        header: dict | None = None,
        arrays: tuple = (),
        *,
        deadline: float | None = None,
        idempotent: bool = True,
    ) -> tuple[MsgType, dict, list[np.ndarray]]:
        """One RPC round trip; returns ``(msg_type, header, arrays)``.

        ``deadline`` is an absolute ``time.monotonic()`` instant shared
        across retries.  Error frames raise
        :class:`~repro.errors.RemoteCallError` (never retried).
        """
        header = header or {}
        attempts = (self.retries + 1) if idempotent else 1
        delay = self.backoff_s
        last: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                self._count("retried")
                pause = delay
                if deadline is not None:
                    pause = min(pause, self._remaining(deadline))
                time.sleep(max(pause, 0.0))
                delay = min(delay * 2.0, self.backoff_max_s)
            try:
                self._count("requests_sent")
                resp_type, resp_header, resp_arrays = self._once(
                    msg_type, header, arrays, deadline
                )
            except DeadlineExceededError:
                raise  # retrying a blown budget only makes it later
            except (ConnectionLostError, ProtocolError) as exc:
                last = exc
                continue
            raise_if_error(resp_type, resp_header)
            return resp_type, resp_header, resp_arrays
        assert last is not None
        raise last

    # -- the searcher RPC surface ------------------------------------------------------
    def search_batch(
        self,
        index_name: str,
        queries: np.ndarray,
        k: int,
        *,
        ef: int | None = None,
        deadline: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Remote lockstep shard search; mirrors ``SearcherNode.search_batch``."""
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        _, header, arrays = self.call(
            MsgType.SEARCH,
            {"index": str(index_name), "top_k": int(k), "ef": ef},
            (queries,),
            deadline=deadline,
        )
        if len(arrays) != 2:
            raise ProtocolError(
                f"search result carries {len(arrays)} arrays, expected 2"
            )
        ids = np.asarray(arrays[0], dtype=np.int64)
        dists = np.asarray(arrays[1], dtype=np.float64)
        want = (queries.shape[0], int(k))
        if ids.shape != want or dists.shape != want:
            raise ProtocolError(
                f"search result shapes {ids.shape}/{dists.shape} do not "
                f"match the requested {want}"
            )
        self._count("queries_served", queries.shape[0])
        return ids, dists

    def deploy(
        self,
        index_name: str,
        index_path: str,
        *,
        root: str | None = None,
        deadline: float | None = None,
    ) -> list[str]:
        """Host this searcher's shard of an exported index (not retried)."""
        _, header, _ = self.call(
            MsgType.DEPLOY,
            {"index": str(index_name), "path": str(index_path), "root": root},
            deadline=deadline,
            idempotent=False,
        )
        return list(header.get("hosted", []))

    def undeploy(
        self, index_name: str, *, deadline: float | None = None
    ) -> list[str]:
        """Unhost an index (not retried)."""
        _, header, _ = self.call(
            MsgType.UNDEPLOY,
            {"index": str(index_name)},
            deadline=deadline,
            idempotent=False,
        )
        return list(header.get("hosted", []))

    def stats(self, *, deadline: float | None = None) -> dict:
        """The remote node's counters (see ``SearcherNode.stats``)."""
        _, header, _ = self.call(MsgType.STATS, deadline=deadline)
        return dict(header.get("stats", {}))

    def ping(self, *, deadline: float | None = None) -> int:
        """Liveness probe; returns the remote node's shard id."""
        _, header, _ = self.call(MsgType.PING, deadline=deadline)
        return int(header["shard_id"])

    def __repr__(self) -> str:
        return f"RemoteSearcherClient({self.address!r})"


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
