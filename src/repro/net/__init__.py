"""Distributed serving over the wire (Paper Section 7).

LANNS's online architecture is a broker fanning queries out to *searcher
machines*, each hosting one shard.  This package is that wire layer:

- :mod:`repro.net.protocol` -- length-prefixed binary framing that ships
  numpy query/result blocks zero-copy;
- :mod:`repro.net.server` -- an asyncio TCP server wrapping a
  :class:`~repro.online.searcher.SearcherNode`;
- :mod:`repro.net.client` -- a pooled, retrying, deadline-aware RPC
  client;
- :mod:`repro.net.transport` -- the ``SearcherTransport`` abstraction
  the broker drives, with in-process and remote implementations;
- :mod:`repro.net.fleet` -- spawn/await/stop real searcher subprocesses
  over loopback (benchmarks and failure-injection tests).
"""

from repro.net.client import AsyncRemoteSearcherClient, RemoteSearcherClient
from repro.net.server import SearcherServer
from repro.net.transport import (
    AsyncRemoteSearcherTransport,
    AsyncSearcherTransport,
    LocalSearcherTransport,
    RemoteSearcherTransport,
    SearcherTransport,
    as_transport,
)

__all__ = [
    "RemoteSearcherClient",
    "AsyncRemoteSearcherClient",
    "SearcherServer",
    "SearcherTransport",
    "AsyncSearcherTransport",
    "LocalSearcherTransport",
    "RemoteSearcherTransport",
    "AsyncRemoteSearcherTransport",
    "as_transport",
]
