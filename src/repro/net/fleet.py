"""Spawn and manage real searcher *subprocesses* over loopback.

The remote-serving benchmark and the failure-injection tests need actual
OS processes (so a kill is a kill, not a mock): this module wraps
``python -m repro.cli serve-searcher`` with readiness hand-shaking --
each server binds port 0 and prints a ``SEARCHER-READY shard=S port=P``
line that :func:`launch_searcher` blocks on -- and best-effort teardown.

Everything a child writes (stdout and stderr, merged) is persisted to a
per-searcher log file -- by default under ``$TMPDIR/repro-searcher-logs``
-- so a shard that dies mid-benchmark leaves its traceback somewhere
findable, and launch failures can point at the log instead of discarding
the child's last words.
"""

from __future__ import annotations

import contextlib
import os
import selectors
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path


def _src_path() -> str:
    """The ``src`` directory containing the ``repro`` package."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


def _default_log_dir() -> Path:
    """Where searcher logs land when the caller does not pick a spot."""
    return Path(tempfile.gettempdir()) / "repro-searcher-logs"


@dataclass
class SearcherProcess:
    """One spawned searcher: the OS process plus its serving address."""

    process: subprocess.Popen
    shard_id: int
    host: str
    port: int
    log_path: Path | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the searcher (failure injection: no graceful anything)."""
        if self.alive():
            self.process.kill()
        self.process.wait(timeout=30)

    def terminate(self, grace_s: float = 5.0) -> None:
        """Polite stop: SIGTERM, then SIGKILL after ``grace_s``."""
        if not self.alive():
            self.process.wait(timeout=30)
            return
        self.process.terminate()
        try:
            self.process.wait(timeout=grace_s)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=30)


def launch_searcher(
    shard_id: int,
    *,
    root: str | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_timeout_s: float = 120.0,
    slow_every: int = 0,
    slow_delay_s: float = 0.0,
    max_in_flight: int = 0,
    queue_cap: int = 0,
    retry_after_s: float | None = None,
    batch_max: int = 1,
    batch_wait_ms: float | None = None,
    chaos_spec: str | None = None,
    command: list[str] | None = None,
    log_dir: str | Path | None = None,
) -> SearcherProcess:
    """Spawn one ``serve-searcher`` subprocess and wait until it listens.

    The child inherits the current interpreter and gets this package's
    ``src`` directory prepended to ``PYTHONPATH``, so it works from a
    source checkout without installation.

    The child's merged stdout/stderr is persisted to
    ``<log_dir>/searcher-shard<S>-pid<P>.log`` (``log_dir`` defaults to
    ``repro-searcher-logs`` under the system temp directory; the pid
    suffix keeps replicas of one shard apart).  Launch failures name the
    log file, which holds whatever the child printed before dying.

    The readiness wait reads the child's pipe **non-blocking** against
    the absolute ``ready_timeout_s`` deadline (``os.set_blocking`` +
    :mod:`selectors`).  A blocking ``readline`` here would let a child
    that is alive but wedged -- or that simply stops printing -- stall
    the launcher indefinitely, because the deadline was only checked
    between lines.  On expiry the child is SIGKILLed and reaped, then
    :class:`TimeoutError` raises.

    ``slow_every`` / ``slow_delay_s`` forward straggler injection, the
    admission knobs (``max_in_flight`` / ``queue_cap`` /
    ``retry_after_s``), server-side micro-batching (``batch_max`` /
    ``batch_wait_ms``) and ``chaos_spec`` (a
    :meth:`~repro.net.chaos.FaultPlan.parse` spec string) to the server
    (see :class:`~repro.net.server.SearcherServer`); ``command``
    overrides the spawned argv entirely (readiness-failure tests).
    """
    if command is None:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve-searcher",
            "--shard-id",
            str(shard_id),
            "--host",
            host,
            "--port",
            str(port),
        ]
        if root is not None:
            command += ["--root", str(root)]
        if slow_every:
            command += [
                "--slow-every",
                str(slow_every),
                "--slow-delay-s",
                str(slow_delay_s),
            ]
        if max_in_flight:
            command += ["--max-in-flight", str(max_in_flight)]
        if queue_cap:
            command += ["--queue-cap", str(queue_cap)]
        if retry_after_s is not None:
            command += ["--retry-after-s", str(retry_after_s)]
        if batch_max > 1:
            command += ["--batch-max", str(batch_max)]
        if batch_wait_ms is not None:
            command += ["--batch-wait-ms", str(batch_wait_ms)]
        if chaos_spec:
            command += ["--chaos-spec", str(chaos_spec)]
    env = dict(os.environ)
    src = _src_path()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    # Binary pipe: non-blocking reads compose badly with the text-mode
    # buffering layer (``read`` may raise instead of returning None).
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
    )
    log_root = Path(log_dir) if log_dir is not None else _default_log_dir()
    log_root.mkdir(parents=True, exist_ok=True)
    log_path = log_root / f"searcher-shard{shard_id}-pid{process.pid}.log"
    log_file = open(log_path, "wb")
    try:
        port = _await_ready(
            process, shard_id, ready_timeout_s, log_path, log_file
        )
    except BaseException:
        if process.poll() is None:
            process.kill()
        # Always reap -- no zombie launchers -- but never let a child
        # that survives SIGKILL (uninterruptible I/O) replace the real
        # readiness failure with a TimeoutExpired.
        with contextlib.suppress(subprocess.TimeoutExpired):
            process.wait(timeout=30)
        # The child is dead: salvage whatever it printed after the last
        # readiness read (the traceback, usually) into the log.
        with contextlib.suppress(OSError, ValueError):
            while True:
                tail = process.stdout.read(65536)
                if not tail:
                    break
                log_file.write(tail)
        with contextlib.suppress(OSError, ValueError):
            log_file.close()
        raise
    _drain_output(process, log_file)
    return SearcherProcess(
        process=process,
        shard_id=shard_id,
        host=host,
        port=port,
        log_path=log_path,
    )


def _await_ready(
    process: subprocess.Popen,
    shard_id: int,
    ready_timeout_s: float,
    log_path: Path,
    log_file,
) -> int:
    """Wait for the ``SEARCHER-READY`` line; returns the announced port.

    Every chunk read while waiting is teed into ``log_file``, so the
    child's boot output survives a failed launch.  Raises
    :class:`TimeoutError` when the absolute deadline passes with the
    child still silent (hung, or looping without announcing) and
    :class:`RuntimeError` when the child exits or announces the wrong
    shard -- both name ``log_path``.  The caller kills/reaps on any
    raise.
    """
    # Imported here, not at module level: the server module pulls in the
    # online package, which imports the service, which imports this
    # module's parse_fleet_spec -- a cycle at import time.
    from repro.net.server import parse_ready_line

    assert process.stdout is not None
    deadline = time.monotonic() + ready_timeout_s
    os.set_blocking(process.stdout.fileno(), False)
    buffer = b""
    eof = False
    with selectors.DefaultSelector() as selector:
        selector.register(process.stdout, selectors.EVENT_READ)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"searcher shard {shard_id} not ready within "
                    f"{ready_timeout_s}s (searcher log: {log_path})"
                )
            # Bounded select even at EOF/exit races: poll() below makes
            # progress, and the deadline above always terminates.
            if not eof and not selector.select(timeout=min(remaining, 0.2)):
                continue
            chunk = process.stdout.read(65536) if not eof else b""
            if chunk:
                log_file.write(chunk)
                log_file.flush()
                buffer += chunk
                while b"\n" in buffer:
                    raw, _, buffer = buffer.partition(b"\n")
                    parsed = parse_ready_line(
                        raw.decode("utf-8", errors="replace")
                    )
                    if parsed is None:
                        continue
                    ready_shard, ready_port = parsed
                    if ready_shard != shard_id:
                        raise RuntimeError(
                            f"searcher announced shard {ready_shard}, "
                            f"expected {shard_id} "
                            f"(searcher log: {log_path})"
                        )
                    os.set_blocking(process.stdout.fileno(), True)
                    return ready_port
            elif chunk == b"":
                # EOF: the child closed its end.  If it also exited,
                # report that; if it lives on with a closed stdout it
                # can never announce readiness, so only the deadline
                # remains -- stop selecting on a dead pipe meanwhile.
                eof = True
                if process.poll() is not None:
                    raise RuntimeError(
                        f"searcher shard {shard_id} exited with code "
                        f"{process.returncode} before becoming ready "
                        f"(searcher log: {log_path})"
                    )
                time.sleep(0.05)
            # chunk is None: spurious wakeup on a non-blocking fd.


def _drain_output(process: subprocess.Popen, log_file) -> None:
    """Keep reading the child's merged stdout/stderr into its log file.

    Without a reader, a long-lived searcher that logs more than the OS
    pipe buffer (~64 KiB) would eventually block inside ``print``/
    logging and stop answering RPCs -- looking exactly like a dead
    shard.  A daemon thread per child keeps the pipe empty, persisting
    every line (flushed per line, so a crashed shard's log is current)
    and closing the log at EOF.
    """

    def drain() -> None:
        assert process.stdout is not None
        try:
            for line in process.stdout:
                log_file.write(line)
                log_file.flush()
        finally:
            with contextlib.suppress(OSError, ValueError):
                log_file.close()

    threading.Thread(target=drain, daemon=True).start()


def launch_fleet(
    num_shards: int,
    *,
    root: str | None = None,
    host: str = "127.0.0.1",
    ready_timeout_s: float = 120.0,
    slow_shard: int | None = None,
    slow_every: int = 0,
    slow_delay_s: float = 0.0,
    max_in_flight: int = 0,
    queue_cap: int = 0,
    retry_after_s: float | None = None,
    batch_max: int = 1,
    batch_wait_ms: float | None = None,
    chaos_spec: str | None = None,
    log_dir: str | Path | None = None,
) -> list[SearcherProcess]:
    """Spawn one searcher subprocess per shard; tears down on any failure.

    ``slow_shard`` selects one fleet member to launch with straggler
    injection (``slow_every`` / ``slow_delay_s``) -- the slow-shard
    hedging benchmark's setup.  The admission / micro-batching / chaos
    knobs apply to *every* member (overload and chaos benchmarks want a
    uniformly configured fleet).
    """
    fleet: list[SearcherProcess] = []
    try:
        for shard_id in range(num_shards):
            slow = slow_shard is not None and shard_id == slow_shard
            fleet.append(
                launch_searcher(
                    shard_id,
                    root=root,
                    host=host,
                    ready_timeout_s=ready_timeout_s,
                    slow_every=slow_every if slow else 0,
                    slow_delay_s=slow_delay_s if slow else 0.0,
                    max_in_flight=max_in_flight,
                    queue_cap=queue_cap,
                    retry_after_s=retry_after_s,
                    batch_max=batch_max,
                    batch_wait_ms=batch_wait_ms,
                    chaos_spec=chaos_spec,
                    log_dir=log_dir,
                )
            )
    except BaseException:
        shutdown_fleet(fleet)
        raise
    return fleet


def shutdown_fleet(fleet: list[SearcherProcess]) -> None:
    """Best-effort stop of every fleet member (tolerates already-dead)."""
    for searcher in fleet:
        try:
            searcher.terminate()
        except (OSError, subprocess.SubprocessError):
            # Already-dead child (or one that ignored SIGKILL past the
            # wait timeout): nothing more a best-effort stop can do.
            pass


def fleet_addresses(fleet: list[SearcherProcess]) -> list[str]:
    """``host:port`` per fleet member, in shard order."""
    return [searcher.address for searcher in fleet]


def parse_fleet_spec(spec) -> list[list[str]]:
    """Normalise a searcher fleet spec into per-shard replica groups.

    Accepted shapes (shard order throughout):

    - ``"a:1,b:2"`` -- the legacy flat form: one searcher per shard;
    - ``"a:1,a:2;b:1,b:2"`` -- ``;`` separates shard groups, ``,``
      separates the interchangeable replicas inside one group;
    - ``["a:1", "b:2"]`` -- one searcher per shard;
    - ``[["a:1", "a:2"], ["b:1"]]`` -- explicit replica groups.

    Empty chunks (stray separators) are dropped; an explicitly empty
    group raises -- a shard served by nobody is a wiring bug, not a
    degraded fleet.
    """
    if isinstance(spec, str):
        if ";" in spec:
            groups = [
                [part.strip() for part in chunk.split(",") if part.strip()]
                for chunk in spec.split(";")
            ]
            return [group for group in groups if group]
        return [[part.strip()] for part in spec.split(",") if part.strip()]
    groups = []
    for entry in spec:
        if isinstance(entry, str):
            groups.append([entry])
        else:
            group = [str(address) for address in entry]
            if not group:
                raise ValueError("empty replica group in fleet spec")
            groups.append(group)
    return groups


def launch_replicated_fleet(
    num_shards: int,
    replicas: int,
    *,
    root: str | None = None,
    host: str = "127.0.0.1",
    ready_timeout_s: float = 120.0,
    log_dir: str | Path | None = None,
) -> list[list[SearcherProcess]]:
    """Spawn ``replicas`` searcher subprocesses per shard position.

    Every member of group ``s`` announces shard ``s`` -- they are
    interchangeable servers of the same shard, which is what the
    broker's replica groups expect.  Tears the whole fleet down on any
    launch failure.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    groups: list[list[SearcherProcess]] = []
    try:
        for shard_id in range(num_shards):
            group = [
                launch_searcher(
                    shard_id,
                    root=root,
                    host=host,
                    ready_timeout_s=ready_timeout_s,
                    log_dir=log_dir,
                )
                for _replica in range(replicas)
            ]
            groups.append(group)
    except BaseException:
        shutdown_replicated_fleet(groups)
        raise
    return groups


def shutdown_replicated_fleet(groups: list[list[SearcherProcess]]) -> None:
    """Best-effort stop of every replica of every group."""
    for group in groups:
        shutdown_fleet(group)


def replicated_fleet_addresses(
    groups: list[list[SearcherProcess]],
) -> list[list[str]]:
    """Per-group ``host:port`` lists, in shard order (a fleet spec)."""
    return [[member.address for member in group] for group in groups]


def relaunch_searcher(
    member: SearcherProcess,
    *,
    root: str | None = None,
    ready_timeout_s: float = 120.0,
    log_dir: str | Path | None = None,
) -> SearcherProcess:
    """Start a fresh searcher process at ``member``'s exact address.

    The rolling-restart primitive: the old process must already be dead
    (or about to be -- the listener sets ``SO_REUSEADDR``, but two live
    servers on one port would split traffic).  Returns the replacement
    ``SearcherProcess`` announcing the same shard on the same port; the
    broker's pooled transports reconnect to it transparently.
    """
    return launch_searcher(
        member.shard_id,
        root=root,
        host=member.host,
        port=member.port,
        ready_timeout_s=ready_timeout_s,
        log_dir=log_dir,
    )
