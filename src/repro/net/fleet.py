"""Spawn and manage real searcher *subprocesses* over loopback.

The remote-serving benchmark and the failure-injection tests need actual
OS processes (so a kill is a kill, not a mock): this module wraps
``python -m repro.cli serve-searcher`` with readiness hand-shaking --
each server binds port 0 and prints a ``SEARCHER-READY shard=S port=P``
line that :func:`launch_searcher` blocks on -- and best-effort teardown.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.net.server import parse_ready_line


def _src_path() -> str:
    """The ``src`` directory containing the ``repro`` package."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


@dataclass
class SearcherProcess:
    """One spawned searcher: the OS process plus its serving address."""

    process: subprocess.Popen
    shard_id: int
    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the searcher (failure injection: no graceful anything)."""
        if self.alive():
            self.process.kill()
        self.process.wait(timeout=30)

    def terminate(self, grace_s: float = 5.0) -> None:
        """Polite stop: SIGTERM, then SIGKILL after ``grace_s``."""
        if not self.alive():
            self.process.wait(timeout=30)
            return
        self.process.terminate()
        try:
            self.process.wait(timeout=grace_s)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=30)


def launch_searcher(
    shard_id: int,
    *,
    root: str | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_timeout_s: float = 120.0,
) -> SearcherProcess:
    """Spawn one ``serve-searcher`` subprocess and wait until it listens.

    The child inherits the current interpreter and gets this package's
    ``src`` directory prepended to ``PYTHONPATH``, so it works from a
    source checkout without installation.
    """
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve-searcher",
        "--shard-id",
        str(shard_id),
        "--host",
        host,
        "--port",
        str(port),
    ]
    if root is not None:
        command += ["--root", str(root)]
    env = dict(os.environ)
    src = _src_path()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + ready_timeout_s
    assert process.stdout is not None
    while True:
        if time.monotonic() > deadline:
            process.kill()
            raise TimeoutError(
                f"searcher shard {shard_id} not ready within "
                f"{ready_timeout_s}s"
            )
        line = process.stdout.readline()
        if line == "" and process.poll() is not None:
            raise RuntimeError(
                f"searcher shard {shard_id} exited with code "
                f"{process.returncode} before becoming ready"
            )
        parsed = parse_ready_line(line)
        if parsed is not None:
            ready_shard, ready_port = parsed
            if ready_shard != shard_id:
                process.kill()
                raise RuntimeError(
                    f"searcher announced shard {ready_shard}, "
                    f"expected {shard_id}"
                )
            _drain_output(process)
            return SearcherProcess(
                process=process, shard_id=shard_id, host=host, port=ready_port
            )


def _drain_output(process: subprocess.Popen) -> None:
    """Keep reading (and discarding) the child's merged stdout/stderr.

    Without a reader, a long-lived searcher that logs more than the OS
    pipe buffer (~64 KiB) would eventually block inside ``print``/
    logging and stop answering RPCs -- looking exactly like a dead
    shard.  A daemon thread per child keeps the pipe empty.
    """

    def drain() -> None:
        assert process.stdout is not None
        for _line in process.stdout:
            pass

    threading.Thread(target=drain, daemon=True).start()


def launch_fleet(
    num_shards: int,
    *,
    root: str | None = None,
    host: str = "127.0.0.1",
    ready_timeout_s: float = 120.0,
) -> list[SearcherProcess]:
    """Spawn one searcher subprocess per shard; tears down on any failure."""
    fleet: list[SearcherProcess] = []
    try:
        for shard_id in range(num_shards):
            fleet.append(
                launch_searcher(
                    shard_id,
                    root=root,
                    host=host,
                    ready_timeout_s=ready_timeout_s,
                )
            )
    except BaseException:
        shutdown_fleet(fleet)
        raise
    return fleet


def shutdown_fleet(fleet: list[SearcherProcess]) -> None:
    """Best-effort stop of every fleet member (tolerates already-dead)."""
    for searcher in fleet:
        try:
            searcher.terminate()
        except Exception:
            pass


def fleet_addresses(fleet: list[SearcherProcess]) -> list[str]:
    """``host:port`` per fleet member, in shard order."""
    return [searcher.address for searcher in fleet]
