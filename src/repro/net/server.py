"""``SearcherServer``: an asyncio TCP front for one searcher node.

One server process hosts one :class:`~repro.online.searcher.SearcherNode`
(= one shard position of every deployed index) and serves the broker's
RPCs over the :mod:`repro.net.protocol` framing:

- ``SEARCH``    -- lockstep ``search_batch`` over a hosted index;
- ``DEPLOY``    -- load this node's shard of an exported index from a
  :class:`~repro.storage.hdfs.LocalHdfs` root and host it;
- ``UNDEPLOY``  -- unhost an index;
- ``STATS``     -- node counters + hosted indices;
- ``PING``      -- liveness + shard-id handshake.

Searches and shard loads run on a thread-pool executor so the event loop
keeps accepting connections (and answering pings) while numpy works.
Request handling is per-connection sequential -- one frame in, one frame
out -- which keeps the protocol trivially orderable; concurrency comes
from the client's connection pool, not from pipelining.

Overload safety (PR 10): the server *admits* SEARCH work instead of
executing everything that arrives.  ``max_in_flight`` bounds concurrent
searches, ``queue_cap`` bounds how many more may wait; anything beyond
both is shed instantly with a structured ``OVERLOADED`` error frame
carrying a ``retry_after_s`` hint, so a broker still has budget to fail
over instead of discovering the overload via timeout.  Requests that
ship a ``deadline_ms`` remaining budget are rejected (cheaply) once
that budget is spent -- on arrival or after queueing -- and a client
that hangs up mid-request (a cancelled hedge loser) has its in-flight
work abandoned rather than computed for nobody.  With ``batch_max > 1``
a server-side :class:`~repro.online.microbatch.MicroBatcher` coalesces
SEARCH frames arriving from many broker connections into lockstep
batches (safe because the kernels are batch-composition invariant).

Launch standalone via ``repro.cli serve-searcher --shard-id S --port P``
(prints a ``SEARCHER-READY`` line used by :mod:`repro.net.fleet`), or
in-process via :meth:`SearcherServer.start_in_thread` (tests).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from functools import partial

import numpy as np

from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
)
from repro.net.chaos import FaultPlan
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    MsgType,
    encode_frame,
    error_frame,
    read_frame_async,
)
from repro.obs.cost import SearchCost
from repro.obs.metrics import get_registry
from repro.obs.tracing import SpanRecorder, activate, deactivate, maybe_span
from repro.online.microbatch import MicroBatcher
from repro.online.searcher import SearcherNode

_SHED = get_registry().counter(
    "lanns_searcher_shed_total",
    "SEARCH frames refused at admission with an OVERLOADED error frame.",
)
_EXPIRED = get_registry().counter(
    "lanns_searcher_expired_total",
    "SEARCH frames rejected because their deadline budget was spent.",
)
_ABANDONED = get_registry().counter(
    "lanns_searcher_abandoned_total",
    "In-flight SEARCH frames abandoned because the client hung up.",
)
_FAULTS = get_registry().counter(
    "lanns_chaos_faults_total",
    "Chaos faults injected at the server boundary, labelled by kind.",
)

#: Stdout line a launched server prints once it is accepting connections.
READY_PREFIX = "SEARCHER-READY"


def ready_line(shard_id: int, port: int) -> str:
    """The machine-parseable readiness announcement."""
    return f"{READY_PREFIX} shard={shard_id} port={port}"


def parse_ready_line(line: str) -> tuple[int, int] | None:
    """Inverse of :func:`ready_line`; ``None`` if the line is not one."""
    parts = line.strip().split()
    if len(parts) != 3 or parts[0] != READY_PREFIX:
        return None
    try:
        shard = dict(part.split("=", 1) for part in parts[1:])
        return int(shard["shard"]), int(shard["port"])
    except (ValueError, KeyError):
        return None


class SearcherServer:
    """Serve one :class:`SearcherNode` over TCP.

    Parameters
    ----------
    node:
        The searcher this server fronts.
    host, port:
        Bind address; ``port=0`` picks a free port (``self.port`` holds
        the actual one once started).
    root:
        Optional :class:`LocalHdfs` root this server loads shards from.
        When ``None``, each ``DEPLOY`` request must carry a ``root`` --
        fine over loopback, where broker and searcher share a disk.
    max_frame:
        Per-frame byte ceiling (both directions).
    slow_every, slow_delay_s:
        Straggler injection for benchmarks and hedging tests: every
        ``slow_every``-th SEARCH request (starting with the first)
        sleeps ``slow_delay_s`` seconds before executing, modelling a
        per-request stall (GC pause, queueing spike) rather than a
        uniformly slow machine.  ``slow_every=2`` makes a hedged retry
        of a stalled request land on a fast slot; ``slow_every=1``
        stalls every request.  ``0`` (default) disables injection.
    max_in_flight, queue_cap:
        Admission control: at most ``max_in_flight`` SEARCH requests
        execute concurrently and at most ``queue_cap`` more wait for a
        slot; anything beyond is shed with ``OVERLOADED``.
        ``max_in_flight=0`` (default) disables admission entirely.
    retry_after_s:
        Backoff hint shipped inside OVERLOADED error frames.
    batch_max, batch_wait_ms:
        Server-side micro-batching: with ``batch_max > 1``, plain SEARCH
        frames (no probes/trace/cost extras) from *different*
        connections coalesce into one lockstep batch of up to
        ``batch_max`` rows, flushing after ``batch_wait_ms`` at the
        latest.  ``batch_max=1`` (default) executes each frame alone.
    chaos:
        Optional seeded :class:`~repro.net.chaos.FaultPlan`; one fault
        decision is drawn per SEARCH frame in arrival order.
    """

    def __init__(
        self,
        node: SearcherNode,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        root: str | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        slow_every: int = 0,
        slow_delay_s: float = 0.0,
        max_in_flight: int = 0,
        queue_cap: int = 0,
        retry_after_s: float = 0.05,
        batch_max: int = 1,
        batch_wait_ms: float = 2.0,
        chaos: FaultPlan | None = None,
    ) -> None:
        if slow_every < 0 or slow_delay_s < 0:
            raise ValueError("slow_every / slow_delay_s must be >= 0")
        if max_in_flight < 0 or queue_cap < 0:
            raise ValueError("max_in_flight / queue_cap must be >= 0")
        if retry_after_s < 0:
            raise ValueError(f"retry_after_s must be >= 0, got {retry_after_s}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.node = node
        self.host = host
        self.port = int(port)
        self.root = root
        self.max_frame = int(max_frame)
        self.slow_every = int(slow_every)
        self.slow_delay_s = float(slow_delay_s)
        self.max_in_flight = int(max_in_flight)
        self.queue_cap = int(queue_cap)
        self.retry_after_s = float(retry_after_s)
        self.chaos = chaos
        #: Lifetime counters (surfaced through the STATS RPC).
        self.connections_accepted = 0
        self.frames_served = 0
        #: SEARCH requests seen (drives the straggler injection cycle).
        self.searches_seen = 0
        self.searches_shed = 0
        self.searches_expired = 0
        self.searches_abandoned = 0
        #: Abandoned dispatches that died with an error rather than a
        #: clean cancel; the repr of the last one aids postmortems.
        self.abandoned_errors = 0
        self._last_abandoned_error: str | None = None
        self._batcher = (
            MicroBatcher(
                self._batched_search,
                max_batch=int(batch_max),
                max_wait_ms=float(batch_wait_ms),
            )
            if batch_max > 1
            else None
        )
        self._admission: asyncio.Semaphore | None = None
        #: SEARCH frames currently waiting for an admission slot.  Only
        #: the event-loop thread touches this, so no lock is needed.
        self._queued = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failed: BaseException | None = None

    # -- request handling --------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        try:
            while True:
                try:
                    msg_type, header, arrays = await read_frame_async(
                        reader, max_frame=self.max_frame
                    )
                except ConnectionLostError:
                    return  # clean hang-up between requests
                except ProtocolError as exc:
                    # Tell the peer what broke, then drop the connection:
                    # after a garbled frame the stream offset is unknown.
                    with contextlib.suppress(OSError, RuntimeError):
                        for buffer in error_frame(exc):
                            writer.write(buffer)
                        await writer.drain()
                    return
                if msg_type == MsgType.SEARCH and self.chaos is not None:
                    action = await self._inject_fault(writer)
                    if action == "reset":
                        return
                    if action in ("drop", "overload"):
                        continue
                try:
                    if msg_type == MsgType.SEARCH:
                        response = await self._dispatch_watched(
                            reader, msg_type, header, arrays
                        )
                        if response is None:
                            # Peer hung up mid-request: the answer has
                            # no audience and the connection is dead.
                            return
                    else:
                        response = await self._dispatch(
                            msg_type, header, arrays
                        )
                except Exception as exc:  # -> structured error frame
                    response = error_frame(exc)
                self.frames_served += 1
                for buffer in response:
                    writer.write(buffer)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            # Shutdown cancels in-flight handler tasks; swallowing the
            # CancelledError here is fine -- the connection is closed
            # and the task has nothing left to do.
            with contextlib.suppress(OSError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _inject_fault(self, writer: asyncio.StreamWriter) -> str | None:
        """Apply the chaos plan's next decision to this SEARCH frame.

        Returns the drawn kind so the connection loop knows whether to
        keep serving (``None``/``"delay"``), skip the response
        (``"drop"``/``"overload"``) or kill the connection (``"reset"``).
        """
        kind = self.chaos.draw()
        if kind is None:
            return None
        _FAULTS.inc(kind=kind)
        if kind == "delay":
            await asyncio.sleep(self.chaos.delay_s)
        elif kind == "overload":
            shed = OverloadedError(
                f"injected overload (shard {self.node.shard_id})",
                retry_after_s=self.retry_after_s,
            )
            with contextlib.suppress(OSError, RuntimeError):
                for buffer in error_frame(shed):
                    writer.write(buffer)
                await writer.drain()
            self.frames_served += 1
        # "reset" and "drop" need no action here: the caller closes the
        # connection / withholds the response respectively.
        return kind

    async def _dispatch_watched(
        self,
        reader: asyncio.StreamReader,
        msg_type: MsgType,
        header: dict,
        arrays: list,
    ) -> list | None:
        """Run a SEARCH dispatch, abandoning it if the client hangs up.

        The protocol is one-frame-in/one-frame-out per connection, so
        while a request is in flight the only legitimate inbound event
        is EOF -- the client timing out, failing over, or cancelling a
        hedge loser.  A 1-byte peek read races the dispatch: if the
        peek wins, nobody wants the answer any more, so the work is
        cancelled (queued work frees its admission slot instantly;
        work already on an executor thread finishes but its result is
        discarded) and the connection is closed.
        """
        work = asyncio.ensure_future(self._dispatch(msg_type, header, arrays))
        watch = asyncio.ensure_future(reader.read(1))
        try:
            await asyncio.wait(
                {work, watch}, return_when=asyncio.FIRST_COMPLETED
            )
        except asyncio.CancelledError:
            work.cancel()
            watch.cancel()
            raise
        if work.done():
            watch.cancel()
            # Cancelling a pending StreamReader.read consumes nothing,
            # so a not-yet-arrived next frame is untouched.
            with contextlib.suppress(asyncio.CancelledError):
                await watch
            return work.result()
        work.cancel()
        try:
            await work
        except asyncio.CancelledError:
            pass
        except Exception as exc:
            # Nobody is listening for this error any more; keep it
            # visible in stats rather than folding it into a success.
            self.abandoned_errors += 1
            self._last_abandoned_error = repr(exc)
        self.searches_abandoned += 1
        _ABANDONED.inc()
        return None

    async def _admit(self) -> bool:
        """Take an admission slot, or shed the request with OVERLOADED.

        Returns whether a slot was actually taken (``False`` when
        admission is disabled).  The shed decision and the waiter count
        both live on the event-loop thread, so check-then-act is
        race-free without a lock.
        """
        if self._admission is None:
            return False
        if self._admission.locked() and self._queued >= self.queue_cap:
            self.searches_shed += 1
            _SHED.inc()
            raise OverloadedError(
                f"searcher shard {self.node.shard_id} is at capacity "
                f"({self.max_in_flight} in flight, {self._queued} queued)",
                retry_after_s=self.retry_after_s,
            )
        self._queued += 1
        try:
            await self._admission.acquire()
        finally:
            self._queued -= 1
        return True

    async def _dispatch(
        self, msg_type: MsgType, header: dict, arrays: list
    ) -> list:
        loop = asyncio.get_running_loop()
        if msg_type == MsgType.PING:
            return self._ok({"shard_id": self.node.shard_id})
        if msg_type == MsgType.SEARCH:
            # Observability extras (protocol v2, absent on v1 peers):
            # a trace context turns on span recording for this request,
            # a cost flag turns on search-cost accounting.
            recorder = (
                SpanRecorder() if header.get("trace") is not None else None
            )
            cost = SearchCost() if header.get("cost") else None
            with maybe_span(recorder, "decode"):
                index_name = str(header["index"])
                top_k = int(header["top_k"])
                ef = header.get("ef")
                ef = int(ef) if ef is not None else None
                probes = header.get("probes")
                if probes is not None:
                    probes = [
                        tuple(int(segment) for segment in row)
                        for row in probes
                    ]
                deadline_ms = header.get("deadline_ms")
                if len(arrays) != 1:
                    raise ProtocolError(
                        f"SEARCH expects 1 query array, got {len(arrays)}"
                    )
            self.searches_seen += 1
            # The peer shipped its *remaining* budget; pin it to this
            # host's clock once, then every later check is a cheap
            # comparison.
            expires_at = (
                time.monotonic() + float(deadline_ms) / 1e3
                if deadline_ms is not None
                else None
            )
            if expires_at is not None and time.monotonic() >= expires_at:
                self.searches_expired += 1
                _EXPIRED.inc()
                raise DeadlineExceededError(
                    f"request budget of {float(deadline_ms):.1f}ms was "
                    "already spent on arrival"
                )
            admitted = await self._admit()
            try:
                if expires_at is not None and time.monotonic() >= expires_at:
                    # Queueing ate the rest of the budget: the client
                    # has already given up, so executing now would burn
                    # CPU on an answer nobody reads.
                    self.searches_expired += 1
                    _EXPIRED.inc()
                    raise DeadlineExceededError(
                        "request budget spent waiting for admission"
                    )
                if (
                    self.slow_every
                    and self.slow_delay_s > 0
                    and (self.searches_seen - 1) % self.slow_every == 0
                ):
                    # Injected straggler: stall this request only (the
                    # event loop keeps serving other connections).  The
                    # stall holds its admission slot -- a stalled
                    # request occupies real capacity.
                    with maybe_span(recorder, "stall", injected=True):
                        await asyncio.sleep(self.slow_delay_s)
                ids, dists = await self._execute_search(
                    loop, index_name, arrays[0], top_k, ef, probes,
                    cost, recorder,
                )
            finally:
                if admitted:
                    self._admission.release()
            result_header: dict = {"index": index_name}
            if cost is not None:
                result_header["cost"] = cost.as_dict()
            if recorder is not None:
                with recorder.span("encode"):
                    ids = np.ascontiguousarray(ids)
                    dists = np.ascontiguousarray(dists)
                result_header["trace"] = recorder.export()
            return self._result(result_header, [ids, dists])
        if msg_type == MsgType.DEPLOY:
            await loop.run_in_executor(None, partial(self._deploy, header))
            return self._ok({"hosted": self.node.hosted_indices})
        if msg_type == MsgType.UNDEPLOY:
            self.node.unhost(str(header["index"]))
            return self._ok({"hosted": self.node.hosted_indices})
        if msg_type == MsgType.STATS:
            stats = self.node.stats()
            stats["connections_accepted"] = self.connections_accepted
            stats["frames_served"] = self.frames_served
            stats["admission"] = {
                "max_in_flight": self.max_in_flight,
                "queue_cap": self.queue_cap,
                "searches_shed": self.searches_shed,
                "searches_expired": self.searches_expired,
                "searches_abandoned": self.searches_abandoned,
                "abandoned_errors": self.abandoned_errors,
                "last_abandoned_error": self._last_abandoned_error,
            }
            if self._batcher is not None:
                stats["server_microbatch"] = {
                    key: (dict(value) if isinstance(value, dict) else value)
                    for key, value in self._batcher.stats.items()
                }
            if self.chaos is not None:
                stats["chaos"] = self.chaos.snapshot()
            # The process-wide metrics snapshot rides along so a broker
            # (or `repro.cli stats`) can merge a fleet into one view.
            stats["metrics"] = get_registry().snapshot()
            return self._ok({"stats": stats})
        raise ProtocolError(f"unexpected message type {msg_type!r}")

    async def _execute_search(
        self, loop, index_name, queries, top_k, ef, probes, cost, recorder
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run one admitted search: coalesced server-side when possible.

        Plain requests (no per-request probes/trace/cost extras) go
        through the server-side micro-batcher, which merges frames from
        *different* broker connections into one lockstep batch --
        batch-composition invariance guarantees the rows come back
        bit-identical to a solo execution.  Requests carrying extras
        execute alone on the thread-pool executor, exactly as before.
        """
        if (
            self._batcher is not None
            and probes is None
            and cost is None
            and recorder is None
        ):
            key = (index_name, top_k, ef, int(queries.shape[1]))
            return await asyncio.wrap_future(
                self._batcher.submit(key, queries)
            )

        def _search():
            # The ambient recorder must be installed inside the
            # executor worker: contextvars do not follow
            # run_in_executor.  The kernels then report their
            # descend/beam/rescore spans into it.
            token = activate(recorder) if recorder is not None else None
            try:
                return self.node.search_batch(
                    index_name,
                    queries,
                    top_k,
                    ef=ef,
                    probes=probes,
                    cost=cost,
                )
            finally:
                if token is not None:
                    deactivate(token)

        return await loop.run_in_executor(None, _search)

    def _batched_search(self, key, queries) -> tuple[np.ndarray, np.ndarray]:
        """Micro-batcher execute hook (runs on the flusher thread)."""
        index_name, top_k, ef, _dim = key
        return self.node.search_batch(index_name, queries, top_k, ef=ef)

    def _deploy(self, header: dict) -> None:
        # Imported here: the server must start fast and the storage stack
        # pulls in the whole offline layer.
        from repro.storage.hdfs import LocalHdfs
        from repro.storage.manifest import load_shard

        root = self.root if self.root is not None else header.get("root")
        if not root:
            raise ValueError(
                "DEPLOY needs a filesystem root: start the server with "
                "--root or include 'root' in the request"
            )
        index_path = str(header["path"])
        fs = LocalHdfs(root)
        shard = load_shard(fs, index_path, self.node.shard_id)
        self.node.host(str(header["index"]), shard)

    @staticmethod
    def _ok(header: dict) -> list:
        return encode_frame(MsgType.OK, header)

    @staticmethod
    def _result(header: dict, arrays: list) -> list:
        return encode_frame(MsgType.RESULT, header, arrays)

    # -- lifecycle ---------------------------------------------------------------------
    async def _serve(self, on_ready=None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        # Fresh per serve: an asyncio primitive binds to the loop that
        # first awaits it, and each run()/start_in_thread() owns a new
        # loop.
        self._admission = (
            asyncio.Semaphore(self.max_in_flight)
            if self.max_in_flight > 0
            else None
        )
        self._queued = 0
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if on_ready is not None:
            on_ready(self)
        self._ready.set()
        async with server:
            await self._stop.wait()

    def run(self, *, announce: bool = True) -> int:
        """Serve until interrupted (the ``serve-searcher`` entry point)."""

        def on_ready(server: "SearcherServer") -> None:
            if announce:
                print(
                    ready_line(server.node.shard_id, server.port), flush=True
                )

        try:
            asyncio.run(self._serve(on_ready))
        except KeyboardInterrupt:
            pass
        finally:
            if self._batcher is not None:
                self._batcher.close()
        return 0

    def start_in_thread(self, timeout: float = 30.0) -> "SearcherServer":
        """Run the server on a daemon thread; returns once it is listening.

        For tests and embedded fleets: the caller's thread stays free,
        ``self.port`` holds the bound port, :meth:`stop` shuts down.
        """

        def runner() -> None:
            try:
                asyncio.run(self._serve())
            except BaseException as exc:  # surfaced by the waiter below
                self._failed = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name=f"searcher-server-{self.node.shard_id}",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("searcher server did not start in time")
        if self._failed is not None:
            raise RuntimeError("searcher server failed to start") from self._failed
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop a :meth:`start_in_thread` server (idempotent).

        Raises :class:`TimeoutError` if the server thread is still alive
        after ``timeout`` -- a silent return here would leak a live
        server holding the port and make the next bind-to-same-port
        restart fail mysteriously.
        """
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError(
                    f"searcher server thread (shard {self.node.shard_id}, "
                    f"port {self.port}) still alive after {timeout}s"
                )
            self._thread = None
        if self._batcher is not None:
            self._batcher.close()

    @property
    def address(self) -> str:
        """``host:port`` once the server is listening."""
        return f"{self.host}:{self.port}"
