"""``SearcherServer``: an asyncio TCP front for one searcher node.

One server process hosts one :class:`~repro.online.searcher.SearcherNode`
(= one shard position of every deployed index) and serves the broker's
RPCs over the :mod:`repro.net.protocol` framing:

- ``SEARCH``    -- lockstep ``search_batch`` over a hosted index;
- ``DEPLOY``    -- load this node's shard of an exported index from a
  :class:`~repro.storage.hdfs.LocalHdfs` root and host it;
- ``UNDEPLOY``  -- unhost an index;
- ``STATS``     -- node counters + hosted indices;
- ``PING``      -- liveness + shard-id handshake.

Searches and shard loads run on a thread-pool executor so the event loop
keeps accepting connections (and answering pings) while numpy works.
Request handling is per-connection sequential -- one frame in, one frame
out -- which keeps the protocol trivially orderable; concurrency comes
from the client's connection pool, not from pipelining.

Launch standalone via ``repro.cli serve-searcher --shard-id S --port P``
(prints a ``SEARCHER-READY`` line used by :mod:`repro.net.fleet`), or
in-process via :meth:`SearcherServer.start_in_thread` (tests).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from functools import partial

import numpy as np

from repro.errors import ConnectionLostError, ProtocolError
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    MsgType,
    encode_frame,
    error_frame,
    read_frame_async,
)
from repro.obs.cost import SearchCost
from repro.obs.metrics import get_registry
from repro.obs.tracing import SpanRecorder, activate, deactivate, maybe_span
from repro.online.searcher import SearcherNode

#: Stdout line a launched server prints once it is accepting connections.
READY_PREFIX = "SEARCHER-READY"


def ready_line(shard_id: int, port: int) -> str:
    """The machine-parseable readiness announcement."""
    return f"{READY_PREFIX} shard={shard_id} port={port}"


def parse_ready_line(line: str) -> tuple[int, int] | None:
    """Inverse of :func:`ready_line`; ``None`` if the line is not one."""
    parts = line.strip().split()
    if len(parts) != 3 or parts[0] != READY_PREFIX:
        return None
    try:
        shard = dict(part.split("=", 1) for part in parts[1:])
        return int(shard["shard"]), int(shard["port"])
    except (ValueError, KeyError):
        return None


class SearcherServer:
    """Serve one :class:`SearcherNode` over TCP.

    Parameters
    ----------
    node:
        The searcher this server fronts.
    host, port:
        Bind address; ``port=0`` picks a free port (``self.port`` holds
        the actual one once started).
    root:
        Optional :class:`LocalHdfs` root this server loads shards from.
        When ``None``, each ``DEPLOY`` request must carry a ``root`` --
        fine over loopback, where broker and searcher share a disk.
    max_frame:
        Per-frame byte ceiling (both directions).
    slow_every, slow_delay_s:
        Straggler injection for benchmarks and hedging tests: every
        ``slow_every``-th SEARCH request (starting with the first)
        sleeps ``slow_delay_s`` seconds before executing, modelling a
        per-request stall (GC pause, queueing spike) rather than a
        uniformly slow machine.  ``slow_every=2`` makes a hedged retry
        of a stalled request land on a fast slot; ``slow_every=1``
        stalls every request.  ``0`` (default) disables injection.
    """

    def __init__(
        self,
        node: SearcherNode,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        root: str | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        slow_every: int = 0,
        slow_delay_s: float = 0.0,
    ) -> None:
        if slow_every < 0 or slow_delay_s < 0:
            raise ValueError("slow_every / slow_delay_s must be >= 0")
        self.node = node
        self.host = host
        self.port = int(port)
        self.root = root
        self.max_frame = int(max_frame)
        self.slow_every = int(slow_every)
        self.slow_delay_s = float(slow_delay_s)
        #: Lifetime counters (surfaced through the STATS RPC).
        self.connections_accepted = 0
        self.frames_served = 0
        #: SEARCH requests seen (drives the straggler injection cycle).
        self.searches_seen = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failed: BaseException | None = None

    # -- request handling --------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        try:
            while True:
                try:
                    msg_type, header, arrays = await read_frame_async(
                        reader, max_frame=self.max_frame
                    )
                except ConnectionLostError:
                    return  # clean hang-up between requests
                except ProtocolError as exc:
                    # Tell the peer what broke, then drop the connection:
                    # after a garbled frame the stream offset is unknown.
                    with contextlib.suppress(OSError, RuntimeError):
                        for buffer in error_frame(exc):
                            writer.write(buffer)
                        await writer.drain()
                    return
                try:
                    response = await self._dispatch(msg_type, header, arrays)
                except Exception as exc:  # -> structured error frame
                    response = error_frame(exc)
                self.frames_served += 1
                for buffer in response:
                    writer.write(buffer)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            # Shutdown cancels in-flight handler tasks; swallowing the
            # CancelledError here is fine -- the connection is closed
            # and the task has nothing left to do.
            with contextlib.suppress(OSError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(
        self, msg_type: MsgType, header: dict, arrays: list
    ) -> list:
        loop = asyncio.get_running_loop()
        if msg_type == MsgType.PING:
            return self._ok({"shard_id": self.node.shard_id})
        if msg_type == MsgType.SEARCH:
            # Observability extras (protocol v2, absent on v1 peers):
            # a trace context turns on span recording for this request,
            # a cost flag turns on search-cost accounting.
            recorder = (
                SpanRecorder() if header.get("trace") is not None else None
            )
            cost = SearchCost() if header.get("cost") else None
            with maybe_span(recorder, "decode"):
                index_name = str(header["index"])
                top_k = int(header["top_k"])
                ef = header.get("ef")
                ef = int(ef) if ef is not None else None
                probes = header.get("probes")
                if probes is not None:
                    probes = [
                        tuple(int(segment) for segment in row)
                        for row in probes
                    ]
                if len(arrays) != 1:
                    raise ProtocolError(
                        f"SEARCH expects 1 query array, got {len(arrays)}"
                    )
            self.searches_seen += 1
            if (
                self.slow_every
                and self.slow_delay_s > 0
                and (self.searches_seen - 1) % self.slow_every == 0
            ):
                # Injected straggler: stall this request only (the event
                # loop keeps serving other connections meanwhile).
                with maybe_span(recorder, "stall", injected=True):
                    await asyncio.sleep(self.slow_delay_s)

            def _search():
                # The ambient recorder must be installed inside the
                # executor worker: contextvars do not follow
                # run_in_executor.  The kernels then report their
                # descend/beam/rescore spans into it.
                token = activate(recorder) if recorder is not None else None
                try:
                    return self.node.search_batch(
                        index_name,
                        arrays[0],
                        top_k,
                        ef=ef,
                        probes=probes,
                        cost=cost,
                    )
                finally:
                    if token is not None:
                        deactivate(token)

            ids, dists = await loop.run_in_executor(None, _search)
            result_header: dict = {"index": index_name}
            if cost is not None:
                result_header["cost"] = cost.as_dict()
            if recorder is not None:
                with recorder.span("encode"):
                    ids = np.ascontiguousarray(ids)
                    dists = np.ascontiguousarray(dists)
                result_header["trace"] = recorder.export()
            return self._result(result_header, [ids, dists])
        if msg_type == MsgType.DEPLOY:
            await loop.run_in_executor(None, partial(self._deploy, header))
            return self._ok({"hosted": self.node.hosted_indices})
        if msg_type == MsgType.UNDEPLOY:
            self.node.unhost(str(header["index"]))
            return self._ok({"hosted": self.node.hosted_indices})
        if msg_type == MsgType.STATS:
            stats = self.node.stats()
            stats["connections_accepted"] = self.connections_accepted
            stats["frames_served"] = self.frames_served
            # The process-wide metrics snapshot rides along so a broker
            # (or `repro.cli stats`) can merge a fleet into one view.
            stats["metrics"] = get_registry().snapshot()
            return self._ok({"stats": stats})
        raise ProtocolError(f"unexpected message type {msg_type!r}")

    def _deploy(self, header: dict) -> None:
        # Imported here: the server must start fast and the storage stack
        # pulls in the whole offline layer.
        from repro.storage.hdfs import LocalHdfs
        from repro.storage.manifest import load_shard

        root = self.root if self.root is not None else header.get("root")
        if not root:
            raise ValueError(
                "DEPLOY needs a filesystem root: start the server with "
                "--root or include 'root' in the request"
            )
        index_path = str(header["path"])
        fs = LocalHdfs(root)
        shard = load_shard(fs, index_path, self.node.shard_id)
        self.node.host(str(header["index"]), shard)

    @staticmethod
    def _ok(header: dict) -> list:
        return encode_frame(MsgType.OK, header)

    @staticmethod
    def _result(header: dict, arrays: list) -> list:
        return encode_frame(MsgType.RESULT, header, arrays)

    # -- lifecycle ---------------------------------------------------------------------
    async def _serve(self, on_ready=None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if on_ready is not None:
            on_ready(self)
        self._ready.set()
        async with server:
            await self._stop.wait()

    def run(self, *, announce: bool = True) -> int:
        """Serve until interrupted (the ``serve-searcher`` entry point)."""

        def on_ready(server: "SearcherServer") -> None:
            if announce:
                print(
                    ready_line(server.node.shard_id, server.port), flush=True
                )

        try:
            asyncio.run(self._serve(on_ready))
        except KeyboardInterrupt:
            pass
        return 0

    def start_in_thread(self, timeout: float = 30.0) -> "SearcherServer":
        """Run the server on a daemon thread; returns once it is listening.

        For tests and embedded fleets: the caller's thread stays free,
        ``self.port`` holds the bound port, :meth:`stop` shuts down.
        """

        def runner() -> None:
            try:
                asyncio.run(self._serve())
            except BaseException as exc:  # surfaced by the waiter below
                self._failed = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name=f"searcher-server-{self.node.shard_id}",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("searcher server did not start in time")
        if self._failed is not None:
            raise RuntimeError("searcher server failed to start") from self._failed
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop a :meth:`start_in_thread` server (idempotent)."""
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def address(self) -> str:
        """``host:port`` once the server is listening."""
        return f"{self.host}:{self.port}"
