"""Common interface for the ANN baseline family."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import as_matrix, as_vector


class AnnIndex(ABC):
    """An approximate nearest neighbor index over a fixed dataset.

    All baselines use Euclidean distance (the Figure 1 setting).
    """

    #: Human-readable algorithm name for reports.
    name: str = ""

    def __init__(self) -> None:
        self._data: np.ndarray | None = None
        #: Full-vector-distance work counter (Figure 1 work metric).
        self.ops = 0

    @property
    def data(self) -> np.ndarray:
        """The indexed vectors."""
        if self._data is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        return self._data

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._data is not None

    def fit(self, data: np.ndarray) -> "AnnIndex":
        """Index ``data``; returns self."""
        self._data = as_matrix(data, name="data")
        self._fit(self._data)
        return self

    @abstractmethod
    def _fit(self, data: np.ndarray) -> None:
        """Algorithm-specific build."""

    @abstractmethod
    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, distances)`` of up to ``k`` neighbors, ascending."""

    def search_batch(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Search many queries; rows padded with -1 / inf."""
        queries = as_matrix(queries, name="queries")
        n = queries.shape[0]
        ids = np.full((n, k), -1, dtype=np.int64)
        dists = np.full((n, k), np.inf, dtype=np.float64)
        for row in range(n):
            found_ids, found_dists = self.search(queries[row], k)
            ids[row, : len(found_ids)] = found_ids
            dists[row, : len(found_dists)] = found_dists
        return ids, dists

    def _rank_candidates(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exactly rank a candidate id set against ``query``.

        Shared by every candidate-generation baseline (forest, LSH, IVF).
        """
        query = as_vector(query, dim=self.data.shape[1], name="query")
        self.ops += int(candidates.size)
        if candidates.size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        vectors = self.data[candidates]
        dists = np.sqrt(((vectors - query) ** 2).sum(axis=1))
        order = np.argsort(dists, kind="stable")[:k]
        return candidates[order].astype(np.int64), dists[order].astype(np.float64)


class HnswAdapter(AnnIndex):
    """Wraps :class:`repro.hnsw.HnswIndex` in the baseline interface."""

    name = "hnsw"

    def __init__(self, params=None, ef_search: int | None = None) -> None:
        super().__init__()
        from repro.hnsw.params import HnswParams

        self.params = params or HnswParams()
        self.ef_search = ef_search
        self._index = None

    def _fit(self, data: np.ndarray) -> None:
        from repro.hnsw.index import build_hnsw

        self._index = build_hnsw(data, params=self.params)
        # Separate build-time work from the query-time counter.
        self._index.reset_distance_ops()

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        result = self._index.search(query, k, ef=self.ef_search)
        self.ops = self._index.distance_ops
        return result
