"""IVF-Flat: inverted file index with a k-means coarse quantizer.

The from-scratch equivalent of Faiss-IVF in Figure 1.  ``nlist``
clusters at build; queries scan the ``nprobe`` nearest inverted lists.
Recall/QPS is tuned with ``nprobe``: higher probes more lists (slower,
more accurate).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AnnIndex
from repro.baselines.kmeans import kmeans
from repro.utils.validation import as_vector


class IvfFlatIndex(AnnIndex):
    """k-means inverted lists + exact scan of the probed lists."""

    name = "ivf_flat"

    def __init__(
        self,
        nlist: int = 64,
        nprobe: int = 4,
        *,
        seed: int = 0,
        kmeans_iters: int = 20,
    ) -> None:
        super().__init__()
        if nlist < 1:
            raise ValueError(f"nlist must be positive, got {nlist}")
        if nprobe < 1:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        self.nlist = int(nlist)
        self.nprobe = int(nprobe)
        self.seed = int(seed)
        self.kmeans_iters = int(kmeans_iters)
        self._centers: np.ndarray | None = None
        self._lists: list[np.ndarray] = []

    def _fit(self, data: np.ndarray) -> None:
        nlist = min(self.nlist, data.shape[0])
        self._centers, assignment = kmeans(
            data, nlist, max_iters=self.kmeans_iters, seed=self.seed
        )
        self._lists = [
            np.flatnonzero(assignment == cluster).astype(np.int64)
            for cluster in range(nlist)
        ]

    @property
    def list_sizes(self) -> list[int]:
        """Population of each inverted list."""
        return [lst.size for lst in self._lists]

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        query = as_vector(query, dim=self.data.shape[1], name="query")
        self.ops += len(self._lists)  # coarse quantizer distances
        center_dists = ((self._centers - query) ** 2).sum(axis=1)
        nprobe = min(self.nprobe, len(self._lists))
        probe = np.argpartition(center_dists, nprobe - 1)[:nprobe]
        candidates = (
            np.concatenate([self._lists[list_id] for list_id in probe])
            if nprobe
            else np.empty(0, dtype=np.int64)
        )
        return self._rank_candidates(query, candidates, k)
