"""Exact brute-force baseline: the recall-1.0 anchor of Figure 1."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AnnIndex
from repro.utils.validation import as_vector


class BruteForceIndex(AnnIndex):
    """Full scan with precomputed squared norms."""

    name = "brute_force"

    def _fit(self, data: np.ndarray) -> None:
        self._sq_norms = np.einsum("ij,ij->i", data, data)

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        query = as_vector(query, dim=self.data.shape[1], name="query")
        self.ops += self.data.shape[0]
        scores = self._sq_norms - 2.0 * (self.data @ query)
        k = min(k, self.data.shape[0])
        # argpartition then sort the short prefix: O(n + k log k).
        prefix = np.argpartition(scores, k - 1)[:k]
        order = prefix[np.argsort(scores[prefix], kind="stable")]
        dists = np.sqrt(
            np.maximum(scores[order] + float(query @ query), 0.0)
        )
        return order.astype(np.int64), dists.astype(np.float64)
