"""Lloyd's k-means with k-means++ seeding, from scratch.

Used as the coarse quantizer of :class:`~repro.baselines.ivf.IvfFlatIndex`
and for the per-subspace codebooks of product quantization.  Kept small:
vectorised assignment, empty-cluster re-seeding, early stop on stable
assignments.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import resolve_rng
from repro.utils.validation import as_matrix


def _plus_plus_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = data.shape[0]
    centers = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(0, n))
    centers[0] = data[first]
    closest = ((data - centers[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = float(closest.sum())
        if total <= 0.0:
            # All points coincide with chosen centers; fill randomly.
            centers[index:] = data[rng.integers(0, n, size=k - index)]
            break
        probabilities = closest / total
        choice = int(rng.choice(n, p=probabilities))
        centers[index] = data[choice]
        distance = ((data - centers[index]) ** 2).sum(axis=1)
        np.minimum(closest, distance, out=closest)
    return centers


def _assign(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Nearest-center assignment via one GEMM."""
    cross = data @ centers.T
    center_norms = np.einsum("ij,ij->i", centers, centers)
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; ||x||^2 is constant per row.
    return np.argmin(center_norms[np.newaxis, :] - 2.0 * cross, axis=1)


def kmeans(
    data: np.ndarray,
    k: int,
    *,
    max_iters: int = 25,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster ``data`` into ``k`` groups.

    Returns
    -------
    (centers, assignment):
        ``(k, dim)`` float64 centroids and per-row cluster ids.
    """
    data = as_matrix(data, name="data").astype(np.float64)
    n = data.shape[0]
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if k > n:
        raise ValueError(f"k={k} exceeds the number of points {n}")
    if max_iters < 1:
        raise ValueError(f"max_iters must be positive, got {max_iters}")
    rng = resolve_rng(seed)
    centers = _plus_plus_init(data, k, rng)
    assignment = _assign(data, centers)
    for _ in range(max_iters):
        for cluster in range(k):
            mask = assignment == cluster
            if mask.any():
                centers[cluster] = data[mask].mean(axis=0)
            else:
                # Re-seed empty clusters with a random point.
                centers[cluster] = data[int(rng.integers(0, n))]
        new_assignment = _assign(data, centers)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
    return centers, assignment
