"""Annoy-style random-projection forest (Spotify's method, Section 2).

"Each tree is constructed by picking two points at random and splitting
the dataset using the hyperplane separating the two points.  This is done
recursively until the number of points in space is small enough to
perform an exhaustive search."

Search walks all trees simultaneously with a priority queue keyed by
margin (distance to the splitting plane), collecting leaf candidates
until ``search_k`` are gathered -- Annoy's actual query algorithm, and
the reason boundary queries can still reach the right leaf.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import AnnIndex
from repro.utils.rng import resolve_rng
from repro.utils.validation import as_vector


@dataclass
class _Node:
    """One tree node; leaves carry row ids, internal nodes a hyperplane."""

    rows: np.ndarray | None = None  # leaves only
    normal: np.ndarray | None = None
    offset: float = 0.0
    left: int = -1
    right: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.rows is not None


class RPForestIndex(AnnIndex):
    """Forest of randomized two-point-split trees.

    Knobs: ``num_trees`` (more = higher recall, slower build) and
    ``search_k`` (candidates gathered per query; more = higher recall,
    lower QPS).
    """

    name = "rp_forest"

    def __init__(
        self,
        num_trees: int = 10,
        leaf_size: int = 32,
        search_k: int | None = None,
        *,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if num_trees < 1:
            raise ValueError(f"num_trees must be positive, got {num_trees}")
        if leaf_size < 2:
            raise ValueError(f"leaf_size must be >= 2, got {leaf_size}")
        self.num_trees = int(num_trees)
        self.leaf_size = int(leaf_size)
        self.search_k = search_k
        self.seed = int(seed)
        self._trees: list[list[_Node]] = []

    # -- build -------------------------------------------------------------------
    def _split(
        self, rows: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, float, np.ndarray, np.ndarray] | None:
        """Two-point split; None when the sample is degenerate."""
        data = self.data
        for _ in range(3):  # retry a couple of times on degenerate pairs
            pair = rng.choice(rows, size=2, replace=False)
            a, b = data[pair[0]], data[pair[1]]
            normal = a - b
            norm = float(np.linalg.norm(normal))
            if norm == 0.0:
                continue
            normal = normal / norm
            offset = float(normal @ ((a + b) / 2.0))
            side = data[rows] @ normal < offset
            if side.any() and not side.all():
                return normal, offset, rows[side], rows[~side]
        return None

    def _build_tree(self, rng: np.random.Generator) -> list[_Node]:
        nodes: list[_Node] = []

        def recurse(rows: np.ndarray) -> int:
            index = len(nodes)
            nodes.append(_Node())
            if rows.size <= self.leaf_size:
                nodes[index].rows = rows
                return index
            split = self._split(rows, rng)
            if split is None:
                nodes[index].rows = rows
                return index
            normal, offset, left_rows, right_rows = split
            nodes[index].normal = normal
            nodes[index].offset = offset
            nodes[index].left = recurse(left_rows)
            nodes[index].right = recurse(right_rows)
            return index

        recurse(np.arange(self.data.shape[0], dtype=np.int64))
        return nodes

    def _fit(self, data: np.ndarray) -> None:
        rng = resolve_rng(self.seed)
        self._trees = [self._build_tree(rng) for _ in range(self.num_trees)]

    # -- search ------------------------------------------------------------------
    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        query = as_vector(query, dim=self.data.shape[1], name="query")
        budget = self.search_k if self.search_k is not None else k * self.num_trees * 2
        # Priority queue over tree frontiers: (-margin, counter, tree, node).
        # Larger margin = query is further inside that subtree's halfspace.
        frontier: list[tuple[float, int, int, int]] = []
        counter = 0
        for tree_id in range(len(self._trees)):
            frontier.append((-np.inf, counter, tree_id, 0))
            counter += 1
        heapq.heapify(frontier)
        candidates: list[np.ndarray] = []
        gathered = 0
        while frontier and gathered < budget:
            _, _, tree_id, node_id = heapq.heappop(frontier)
            node = self._trees[tree_id][node_id]
            if node.is_leaf:
                candidates.append(node.rows)
                gathered += node.rows.size
                continue
            margin = float(node.normal @ query) - node.offset
            near, far = (
                (node.left, node.right) if margin < 0 else (node.right, node.left)
            )
            heapq.heappush(frontier, (-abs(margin), counter, tree_id, near))
            counter += 1
            # The far child is reachable but at a penalty proportional to
            # how far the query sits from the plane.
            heapq.heappush(frontier, (abs(margin), counter, tree_id, far))
            counter += 1
        if candidates:
            unique = np.unique(np.concatenate(candidates))
        else:  # pragma: no cover - only with absurd budgets
            unique = np.empty(0, dtype=np.int64)
        return self._rank_candidates(query, unique, k)
