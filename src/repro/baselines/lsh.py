"""Multi-table random-hyperplane LSH (Indyk-Motwani family).

Each table hashes a vector to the sign pattern of ``num_bits`` random
hyperplane projections; near vectors collide with high probability.
Queries collect the union of their buckets across tables (plus optional
Hamming-distance-1 multiprobes) and rank candidates exactly.

Speed/accuracy knobs: more tables / fewer bits / more probes -> higher
recall, lower QPS.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AnnIndex
from repro.utils.rng import resolve_rng
from repro.utils.validation import as_vector


class LshIndex(AnnIndex):
    """Sign-random-projection LSH with multiprobe."""

    name = "lsh"

    def __init__(
        self,
        num_tables: int = 8,
        num_bits: int = 12,
        *,
        multiprobe: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if num_tables < 1:
            raise ValueError(f"num_tables must be positive, got {num_tables}")
        if not 1 <= num_bits <= 62:
            raise ValueError(f"num_bits must be in [1, 62], got {num_bits}")
        if multiprobe < 0:
            raise ValueError(f"multiprobe must be >= 0, got {multiprobe}")
        self.num_tables = int(num_tables)
        self.num_bits = int(num_bits)
        self.multiprobe = int(multiprobe)
        self.seed = int(seed)
        self._hyperplanes: np.ndarray | None = None  # (tables, bits, dim)
        self._tables: list[dict[int, list[int]]] = []

    def _signatures(self, vectors: np.ndarray) -> np.ndarray:
        """Bucket keys of shape ``(num_tables, num_vectors)``."""
        # projections: (tables, bits, n)
        projections = np.einsum(
            "tbd,nd->tbn", self._hyperplanes, vectors, optimize=True
        )
        bits = (projections > 0).astype(np.int64)
        weights = (1 << np.arange(self.num_bits, dtype=np.int64))[
            np.newaxis, :, np.newaxis
        ]
        return (bits * weights).sum(axis=1)

    def _fit(self, data: np.ndarray) -> None:
        rng = resolve_rng(self.seed)
        self._hyperplanes = rng.standard_normal(
            (self.num_tables, self.num_bits, data.shape[1])
        ).astype(np.float32)
        keys = self._signatures(data)
        self._tables = []
        for table in range(self.num_tables):
            buckets: dict[int, list[int]] = {}
            for row, key in enumerate(keys[table].tolist()):
                buckets.setdefault(key, []).append(row)
            self._tables.append(buckets)

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        query = as_vector(query, dim=self.data.shape[1], name="query")
        self.ops += self.num_tables * self.num_bits  # hash projections
        keys = self._signatures(query[np.newaxis, :])[:, 0]
        candidates: set[int] = set()
        for table, key in enumerate(keys.tolist()):
            buckets = self._tables[table]
            candidates.update(buckets.get(key, ()))
            # Multiprobe: also visit buckets at Hamming distance 1.
            for bit in range(min(self.multiprobe, self.num_bits)):
                candidates.update(buckets.get(key ^ (1 << bit), ()))
        return self._rank_candidates(
            query, np.fromiter(candidates, dtype=np.int64, count=len(candidates)), k
        )
