"""From-scratch ANN baselines for the Figure 1 recall/QPS frontier.

The paper motivates HNSW by the ann-benchmarks frontier (Figure 1):
HNSW dominates tree-based (Annoy), hashing-based (LSH), and
quantization-based (Faiss-IVF) methods on SIFT1M.  To reproduce that
figure without external libraries, each family is implemented here:

- :class:`BruteForceIndex` -- exact scan (recall 1.0, lowest QPS).
- :class:`RPForestIndex` -- Annoy-style forest of random-projection trees.
- :class:`LshIndex` -- multi-table random-hyperplane LSH.
- :class:`IvfFlatIndex` -- k-means coarse quantizer + inverted lists.
- :class:`PqIndex` -- product quantization with ADC scanning.

All share the :class:`~repro.baselines.base.AnnIndex` interface so the
figure harness can sweep their speed/accuracy knobs uniformly; our HNSW
participates through :class:`~repro.baselines.base.HnswAdapter`.
"""

from repro.baselines.base import AnnIndex, HnswAdapter
from repro.baselines.exact import BruteForceIndex
from repro.baselines.kmeans import kmeans
from repro.baselines.ivf import IvfFlatIndex
from repro.baselines.lsh import LshIndex
from repro.baselines.annoy_forest import RPForestIndex
from repro.baselines.pq import PqIndex, ProductQuantizer

__all__ = [
    "AnnIndex",
    "HnswAdapter",
    "BruteForceIndex",
    "kmeans",
    "IvfFlatIndex",
    "LshIndex",
    "RPForestIndex",
    "PqIndex",
    "ProductQuantizer",
]
