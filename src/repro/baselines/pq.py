"""Product quantization (Jegou et al.) with ADC scanning.

The vector space is split into ``m`` subspaces; each subspace is
clustered into ``ks`` codewords, so a vector compresses to ``m`` bytes
(for ``ks=256``).  Queries score every code with an Asymmetric Distance
Computation table: per-subspace distances from the query to each
codeword, summed by table lookup.

This is the compression family of Section 2: "the dataset is split into
multiple smaller, tall datasets based on its dimensions, and each of
these sub-datasets are then clustered into k clusters".
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import AnnIndex
from repro.baselines.kmeans import kmeans
from repro.errors import CodecNotFittedError
from repro.utils.validation import as_matrix, as_vector


class ProductQuantizer:
    """The codec: fit codebooks, encode vectors, build ADC tables.

    Parameters
    ----------
    num_subspaces:
        ``m``: how many chunks the dimensions are split into (must divide
        the dimensionality).
    num_codes:
        ``ks``: codewords per subspace.
    """

    def __init__(
        self,
        num_subspaces: int = 8,
        num_codes: int = 256,
        *,
        seed: int = 0,
        kmeans_iters: int = 15,
    ) -> None:
        if num_subspaces < 1:
            raise ValueError(
                f"num_subspaces must be positive, got {num_subspaces}"
            )
        if num_codes < 2:
            raise ValueError(f"num_codes must be >= 2, got {num_codes}")
        self.num_subspaces = int(num_subspaces)
        self.num_codes = int(num_codes)
        self.seed = int(seed)
        self.kmeans_iters = int(kmeans_iters)
        self.codebooks: np.ndarray | None = None  # (m, ks, dim/m)
        self.dim: int | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether codebooks have been trained."""
        return self.codebooks is not None

    def _require_fitted(self) -> None:
        if self.codebooks is None:
            raise CodecNotFittedError(
                "ProductQuantizer has no codebooks; call fit() before "
                "encode/decode/adc_table"
            )

    def _chunks(self, vectors: np.ndarray) -> list[np.ndarray]:
        width = self.dim // self.num_subspaces
        return [
            vectors[:, chunk * width : (chunk + 1) * width]
            for chunk in range(self.num_subspaces)
        ]

    def fit(self, data: np.ndarray) -> "ProductQuantizer":
        """Train one k-means codebook per subspace."""
        data = as_matrix(data, name="data")
        if data.shape[1] % self.num_subspaces != 0:
            raise ValueError(
                f"dim {data.shape[1]} is not divisible by "
                f"num_subspaces={self.num_subspaces}"
            )
        self.dim = data.shape[1]
        # Fewer rows than requested codewords: clamp, and keep the
        # attribute in sync so a persisted config never disagrees with
        # codebooks.shape[1].
        num_codes = min(self.num_codes, data.shape[0])
        codebooks = []
        for chunk_index, chunk in enumerate(self._chunks(data)):
            centers, _ = kmeans(
                chunk,
                num_codes,
                max_iters=self.kmeans_iters,
                seed=self.seed + chunk_index,
            )
            codebooks.append(centers)
        self.codebooks = np.stack(codebooks)  # (m, ks', dim/m)
        self.num_codes = num_codes
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Compress vectors to ``(n, m)`` uint16 code matrices."""
        self._require_fitted()
        vectors = as_matrix(vectors, dim=self.dim, name="vectors")
        codes = np.empty(
            (vectors.shape[0], self.num_subspaces), dtype=np.uint16
        )
        for chunk_index, chunk in enumerate(self._chunks(vectors)):
            centers = self.codebooks[chunk_index]
            cross = chunk.astype(np.float64) @ centers.T
            norms = np.einsum("ij,ij->i", centers, centers)
            codes[:, chunk_index] = np.argmin(
                norms[np.newaxis, :] - 2.0 * cross, axis=1
            )
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct (approximate) vectors from codes."""
        self._require_fitted()
        codes = np.asarray(codes)
        parts = [
            self.codebooks[chunk_index][codes[:, chunk_index]]
            for chunk_index in range(self.num_subspaces)
        ]
        return np.concatenate(parts, axis=1).astype(np.float32)

    def adc_table(self, query: np.ndarray) -> np.ndarray:
        """Per-subspace squared distances from ``query`` to each codeword."""
        self._require_fitted()
        query = as_vector(query, dim=self.dim, name="query")
        width = self.dim // self.num_subspaces
        table = np.empty(
            (self.num_subspaces, self.codebooks.shape[1]), dtype=np.float64
        )
        for chunk_index in range(self.num_subspaces):
            sub = query[chunk_index * width : (chunk_index + 1) * width]
            diff = self.codebooks[chunk_index] - sub
            table[chunk_index] = np.einsum("ij,ij->i", diff, diff)
        return table

    def adc_scores(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances from ``query`` to coded vectors."""
        table = self.adc_table(query)
        total = np.zeros(codes.shape[0], dtype=np.float64)
        for chunk_index in range(self.num_subspaces):
            total += table[chunk_index][codes[:, chunk_index]]
        return total

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (codebooks as nested lists; json-friendly)."""
        self._require_fitted()
        return {
            "num_subspaces": self.num_subspaces,
            "num_codes": self.num_codes,
            "seed": self.seed,
            "kmeans_iters": self.kmeans_iters,
            "dim": self.dim,
            "codebooks": self.codebooks.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProductQuantizer":
        """Inverse of :meth:`to_dict`."""
        quantizer = cls(
            int(payload["num_subspaces"]),
            int(payload["num_codes"]),
            seed=int(payload["seed"]),
            kmeans_iters=int(payload["kmeans_iters"]),
        )
        quantizer.dim = int(payload["dim"])
        quantizer.codebooks = np.asarray(
            payload["codebooks"], dtype=np.float64
        )
        if quantizer.codebooks.shape[1] != quantizer.num_codes:
            raise ValueError(
                f"codebooks have {quantizer.codebooks.shape[1]} codewords "
                f"but num_codes says {quantizer.num_codes}"
            )
        return quantizer


class PqIndex(AnnIndex):
    """Flat PQ index: ADC-scan all codes, optionally rerank exactly."""

    name = "pq"

    def __init__(
        self,
        num_subspaces: int = 8,
        num_codes: int = 256,
        *,
        rerank: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.quantizer = ProductQuantizer(
            num_subspaces, num_codes, seed=seed
        )
        if rerank < 0:
            raise ValueError(f"rerank must be >= 0, got {rerank}")
        self.rerank = int(rerank)
        self._codes: np.ndarray | None = None

    def _fit(self, data: np.ndarray) -> None:
        self.quantizer.fit(data)
        self._codes = self.quantizer.encode(data)

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        # ADC work in full-distance equivalents: the table build costs
        # ks sub-distances per subspace (= ks full distances total) and
        # the scan costs m lookups per code (= m/d of a full distance).
        subspaces = self.quantizer.num_subspaces
        self.ops += self.quantizer.codebooks.shape[1] + max(
            1, int(self._codes.shape[0] * subspaces / self.quantizer.dim)
        )
        scores = self.quantizer.adc_scores(query, self._codes)
        take = min(max(k, self.rerank), scores.shape[0])
        prefix = np.argpartition(scores, take - 1)[:take]
        if self.rerank:
            # Rerank the shortlist with exact distances.
            return self._rank_candidates(query, prefix.astype(np.int64), k)
        order = prefix[np.argsort(scores[prefix], kind="stable")][:k]
        query64 = np.asarray(query, dtype=np.float64)
        exact = np.sqrt(
            ((self.data[order].astype(np.float64) - query64) ** 2).sum(axis=1)
        )
        # The shortlist is chosen by approximate ADC score, but the
        # distances returned are exact -- re-sort so the returned pairs
        # are ascending in what the caller actually sees.
        resort = np.argsort(exact, kind="stable")
        return order[resort].astype(np.int64), exact[resort]
