"""Dataset registry used by tests, examples and every benchmark.

``load_dataset(name)`` returns a fully materialised
:class:`Dataset` -- base vectors, query vectors and (lazily computed,
cached) exact ground truth.  Default sizes are scaled down from the paper
so the whole benchmark suite runs in minutes on two cores; set the
``REPRO_SCALE`` environment variable (e.g. ``REPRO_SCALE=4``) to grow
every dataset proportionally.

=============  =========================  ====================== ======
registry name  paper dataset              paper size             dim
=============  =========================  ====================== ======
sift1m         SIFT1M                     1M base / 10k queries  128
gist1m         GIST1M                     1M base / 1k queries   960
groups         LinkedIn Groups            2.7M / 10k-20k         256
people         LinkedIn People Search     180M / 20k             50
pymk           People You May Know        100M / 1M-372M         50
neardupe       LinkedIn Near-Duplicates   148k / 500k            2048
=============  =========================  ====================== ======
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.data import synthetic
from repro.offline.brute_force import exact_top_k


def scale_factor() -> float:
    """The global dataset scale multiplier (``REPRO_SCALE``, default 1)."""
    raw = os.environ.get("REPRO_SCALE", "1")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be numeric, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass
class Dataset:
    """A benchmark dataset: base vectors, queries and exact ground truth."""

    name: str
    base: np.ndarray
    queries: np.ndarray
    metric: str = "euclidean"
    paper_reference: str = ""
    _truth_cache: dict = field(default_factory=dict, repr=False)

    @property
    def num_base(self) -> int:
        """Number of indexed vectors."""
        return self.base.shape[0]

    @property
    def num_queries(self) -> int:
        """Number of query vectors."""
        return self.queries.shape[0]

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self.base.shape[1]

    def ground_truth(self, k: int) -> np.ndarray:
        """Exact top-``k`` ids per query (cached per ``k`` ceiling)."""
        cached_k = max([k] + [existing for existing in self._truth_cache])
        if cached_k not in self._truth_cache:
            ids, _ = exact_top_k(
                self.base, self.queries, cached_k, metric=self.metric
            )
            self._truth_cache.clear()
            self._truth_cache[cached_k] = ids
        return self._truth_cache[cached_k][:, :k]

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, base={self.num_base}, "
            f"queries={self.num_queries}, dim={self.dim})"
        )


#: name -> (generator, base_size, query_count, paper_reference)
_RECIPES = {
    "sift1m": (
        synthetic.sift_like,
        10_000,
        200,
        "SIFT1M: 1M base / 10k queries, d=128 (Tables 1-3)",
    ),
    "gist1m": (
        synthetic.gist_like,
        4_000,
        100,
        "GIST1M: 1M base / 1k queries, d=960 (Tables 4-6)",
    ),
    "groups": (
        synthetic.groups_like,
        8_000,
        200,
        "Groups: 2.7M groups, d=256 (Tables 7-9)",
    ),
    "people": (
        synthetic.people_like,
        20_000,
        200,
        "People Search: 180M members, d=50 (Tables 8-9)",
    ),
    "pymk": (
        synthetic.people_like,
        16_000,
        200,
        "PYMK: 100M members, d=50 (Tables 8-9)",
    ),
    "neardupe": (
        synthetic.neardupe_like,
        3_000,
        100,
        "NearDupe: 148k images, d=2048 (Tables 8-9)",
    ),
}


def available_datasets() -> list[str]:
    """Registered dataset names."""
    return sorted(_RECIPES)


def load_dataset(
    name: str,
    *,
    scale: float | None = None,
    seed: int = 0,
) -> Dataset:
    """Materialise a registry dataset.

    Parameters
    ----------
    scale:
        Size multiplier; defaults to the ``REPRO_SCALE`` env variable.
    seed:
        Generator seed (queries use ``seed + 1`` so they are disjoint
        draws from the same distribution).
    """
    try:
        generator, base_size, query_count, reference = _RECIPES[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    if scale is None:
        scale = scale_factor()
    num_base = max(int(base_size * scale), 32)
    num_queries = max(int(query_count * min(scale, 4.0)), 10)
    # PYMK shares the people generator but must be a different draw.
    generator_seed = seed if name != "pymk" else seed + 1000
    base = generator(num_base, seed=generator_seed)
    queries = synthetic.make_queries(
        base, num_queries, seed=generator_seed + 1, perturbation=0.1
    )
    return Dataset(
        name=name, base=base, queries=queries, paper_reference=reference
    )
