"""Synthetic dataset generators with the paper's dimensionalities.

Each recipe is a clustered Gaussian mixture shaped to resemble its
real-world counterpart:

=============  ====  ===========================================
recipe         dim   modelled after
=============  ====  ===========================================
sift_like       128  SIFT1M local image descriptors (uint8 range)
gist_like       960  GIST1M global image descriptors ([0, 1])
groups_like     256  LinkedIn Groups embeddings (unit-ish norm)
people_like      50  LinkedIn People / PYMK member embeddings
neardupe_like  2048  CNN embeddings with genuine near-duplicates
=============  ====  ===========================================

Clustered (not i.i.d.) data matters: the APD segmenter's advantage over
random hyperplanes only exists when the data has principal directions to
find, and HNSW recall behaviour differs on clustered data.  All
generators are deterministic in ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import resolve_rng


def clustered_gaussians(
    n: int,
    dim: int,
    *,
    num_clusters: int = 20,
    cluster_std: float = 1.0,
    center_scale: float = 4.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """A Gaussian mixture with random centers; the base of every recipe.

    Cluster populations are multinomial (uneven, like real corpora).
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    if dim < 1:
        raise ValueError(f"dim must be positive, got {dim}")
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be positive, got {num_clusters}")
    rng = resolve_rng(seed)
    centers = rng.normal(scale=center_scale, size=(num_clusters, dim))
    assignment = rng.integers(0, num_clusters, size=n)
    data = centers[assignment] + rng.normal(scale=cluster_std, size=(n, dim))
    return data.astype(np.float32)


def sift_like(n: int, *, seed: int = 0) -> np.ndarray:
    """128-d SIFT-style descriptors: non-negative, bounded like uint8."""
    data = clustered_gaussians(
        n, 128, num_clusters=64, cluster_std=12.0, center_scale=35.0, seed=seed
    )
    # SIFT descriptors are histograms of gradient magnitudes: shift into
    # the non-negative uint8 range and clip, keeping float32 storage.
    data = np.clip(data + 128.0, 0.0, 255.0)
    return np.round(data).astype(np.float32)


def gist_like(n: int, *, seed: int = 0) -> np.ndarray:
    """960-d GIST-style descriptors: dense, in [0, 1], highly clustered."""
    data = clustered_gaussians(
        n, 960, num_clusters=32, cluster_std=0.05, center_scale=0.18, seed=seed
    )
    return np.clip(data + 0.5, 0.0, 1.0).astype(np.float32)


def groups_like(n: int, *, seed: int = 0) -> np.ndarray:
    """256-d Groups-style embeddings, approximately unit norm."""
    data = clustered_gaussians(
        n, 256, num_clusters=48, cluster_std=0.35, center_scale=1.0, seed=seed
    )
    norms = np.linalg.norm(data, axis=1, keepdims=True)
    return (data / np.maximum(norms, 1e-12)).astype(np.float32)


def people_like(n: int, *, seed: int = 0) -> np.ndarray:
    """50-d People/PYMK-style member embeddings."""
    return clustered_gaussians(
        n, 50, num_clusters=100, cluster_std=0.6, center_scale=2.0, seed=seed
    )


def neardupe_like(
    n: int,
    *,
    seed: int = 0,
    duplicate_fraction: float = 0.3,
    duplicate_noise: float = 0.02,
) -> np.ndarray:
    """2048-d image embeddings where ~``duplicate_fraction`` of the points
    are near-duplicates (tiny perturbations) of earlier points.

    This reproduces the structure of the paper's NearDupe use case:
    detecting re-posts of the same image among feed multimedia.
    """
    if not 0.0 <= duplicate_fraction < 1.0:
        raise ValueError(
            f"duplicate_fraction must be in [0, 1), got {duplicate_fraction}"
        )
    rng = resolve_rng(seed)
    num_duplicates = int(n * duplicate_fraction)
    num_originals = n - num_duplicates
    originals = clustered_gaussians(
        num_originals,
        2048,
        num_clusters=24,
        cluster_std=0.4,
        center_scale=1.2,
        seed=rng,
    )
    if num_duplicates == 0:
        return originals
    source_rows = rng.integers(0, num_originals, size=num_duplicates)
    duplicates = originals[source_rows] + rng.normal(
        scale=duplicate_noise, size=(num_duplicates, 2048)
    ).astype(np.float32)
    data = np.concatenate([originals, duplicates], axis=0)
    # Shuffle so duplicates are not clustered at the tail.
    return data[rng.permutation(n)]


def make_queries(
    data: np.ndarray,
    num_queries: int,
    *,
    seed: int | np.random.Generator | None = 0,
    perturbation: float = 0.1,
) -> np.ndarray:
    """In-distribution queries: sampled base points plus relative noise.

    ``perturbation`` is relative to the per-dimension standard deviation
    of the data, matching how benchmark query sets are drawn from the
    same distribution as the corpus.
    """
    if num_queries < 1:
        raise ValueError(f"num_queries must be positive, got {num_queries}")
    rng = resolve_rng(seed)
    data = np.asarray(data, dtype=np.float32)
    rows = rng.integers(0, data.shape[0], size=num_queries)
    spread = data.std(axis=0, keepdims=True)
    noise = rng.normal(size=(num_queries, data.shape[1])) * spread * perturbation
    return (data[rows] + noise).astype(np.float32)
