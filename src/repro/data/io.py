"""fvecs / ivecs IO: the TEXMEX format of the real SIFT1M / GIST1M.

Each vector is stored as a little-endian int32 dimensionality followed by
``dim`` components (float32 for fvecs, int32 for ivecs).  Provided so the
benchmarks can consume the genuine archives when they are available
(point ``REPRO_SIFT1M_DIR`` at the extracted files); the synthetic
recipes are used otherwise.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import SerializationError


def _read_vecs(path: str | Path, dtype) -> np.ndarray:
    raw = np.fromfile(str(path), dtype=np.int32)
    if raw.size == 0:
        return np.empty((0, 0), dtype=dtype)
    dim = int(raw[0])
    if dim <= 0:
        raise SerializationError(f"{path}: bad leading dimension {dim}")
    width = dim + 1
    if raw.size % width != 0:
        raise SerializationError(
            f"{path}: size {raw.size} not a multiple of dim+1={width}"
        )
    table = raw.reshape(-1, width)
    if not np.all(table[:, 0] == dim):
        raise SerializationError(f"{path}: inconsistent per-vector dims")
    body = table[:, 1:]
    if dtype == np.float32:
        return body.copy().view(np.float32)
    return body.astype(dtype)


def read_fvecs(path: str | Path) -> np.ndarray:
    """Read an ``.fvecs`` file into a float32 matrix."""
    return _read_vecs(path, np.float32)


def read_ivecs(path: str | Path) -> np.ndarray:
    """Read an ``.ivecs`` file (e.g. ground truth ids) into int32."""
    return _read_vecs(path, np.int32)


def write_fvecs(path: str | Path, vectors: np.ndarray) -> None:
    """Write a float32 matrix as ``.fvecs``."""
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2:
        raise SerializationError(
            f"fvecs needs a 2-D array, got shape {vectors.shape}"
        )
    n, dim = vectors.shape
    table = np.empty((n, dim + 1), dtype=np.int32)
    table[:, 0] = dim
    table[:, 1:] = vectors.view(np.int32)
    table.tofile(str(path))


def write_ivecs(path: str | Path, vectors: np.ndarray) -> None:
    """Write an int32 matrix as ``.ivecs``."""
    vectors = np.asarray(vectors, dtype=np.int32)
    if vectors.ndim != 2:
        raise SerializationError(
            f"ivecs needs a 2-D array, got shape {vectors.shape}"
        )
    n, dim = vectors.shape
    table = np.empty((n, dim + 1), dtype=np.int32)
    table[:, 0] = dim
    table[:, 1:] = vectors
    table.tofile(str(path))
