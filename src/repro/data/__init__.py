"""Datasets: synthetic recipes, registry, IO and ground truth.

The real SIFT1M/GIST1M archives and LinkedIn's production datasets are
not available offline, so each is substituted by a deterministic
synthetic generator that preserves the *dimensionality and structure*
the paper reports (see DESIGN.md, substitutions #3-#4).  True fvecs/ivecs
readers are provided for runs where the real archives exist.
"""

from repro.data.synthetic import (
    clustered_gaussians,
    gist_like,
    groups_like,
    make_queries,
    neardupe_like,
    people_like,
    sift_like,
)
from repro.data.datasets import Dataset, available_datasets, load_dataset
from repro.data.io import read_fvecs, read_ivecs, write_fvecs, write_ivecs

__all__ = [
    "clustered_gaussians",
    "sift_like",
    "gist_like",
    "groups_like",
    "people_like",
    "neardupe_like",
    "make_queries",
    "Dataset",
    "available_datasets",
    "load_dataset",
    "read_fvecs",
    "write_fvecs",
    "read_ivecs",
    "write_ivecs",
]
