"""Setuptools entry point.

Kept as an explicit ``setup()`` call (rather than pure ``pyproject.toml``
metadata) so that fully-offline environments (no ``wheel`` package
available for PEP 660 editable builds) can still do::

    pip install -e . --no-build-isolation --no-use-pep517

``pyproject.toml`` carries the build-system pin and tool configuration
(ruff, pytest); the distribution metadata lives here.
"""

from pathlib import Path

from setuptools import find_packages, setup

_VERSION = {}
exec(
    (Path(__file__).parent / "src" / "repro" / "version.py").read_text(),
    _VERSION,
)

setup(
    name="lanns-repro",
    version=_VERSION["__version__"],
    description=(
        "Reproduction of LANNS: a web-scale approximate nearest neighbor "
        "lookup system (VLDB 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
