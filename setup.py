"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists so that fully-offline environments (no ``wheel`` package available
for PEP 660 editable builds) can still do::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
