"""Tests for the broker-level LRU query result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.online.broker import Broker
from repro.online.cache import QueryResultCache, result_cache_key
from repro.online.searcher import SearcherNode
from repro.online.service import OnlineService
from repro.storage.manifest import save_lanns_index
from tests.conftest import FAST_HNSW


def entry(value: int, k: int = 4):
    ids = np.arange(value, value + k, dtype=np.int64)
    dists = np.linspace(0.0, 1.0, k) + value
    return ids, dists


def key_of(tag: int, index_name: str = "idx") -> tuple:
    query = np.full(8, tag, dtype=np.float32)
    return result_cache_key(index_name, query, 10, 48, 2)


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=2,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=13,
    )


@pytest.fixture(scope="module")
def index(clustered_data, config):
    return build_lanns_index(clustered_data, config=config)


@pytest.fixture(scope="module")
def searchers(index):
    fleet = [SearcherNode(0), SearcherNode(1)]
    for shard_id, searcher in enumerate(fleet):
        searcher.host("main", index.shards[shard_id])
    return fleet


class TestQueryResultCacheUnit:
    def test_roundtrip_is_bit_identical(self):
        cache = QueryResultCache(4)
        ids, dists = entry(7)
        cache.put(key_of(1), ids, dists)
        got = cache.get(key_of(1))
        assert got is not None
        np.testing.assert_array_equal(got[0], ids)
        np.testing.assert_array_equal(got[1], dists)

    def test_get_and_put_return_and_store_copies(self):
        cache = QueryResultCache(4)
        ids, dists = entry(7)
        cache.put(key_of(1), ids, dists)
        ids[:] = -999  # caller mutates its own arrays after put...
        first = cache.get(key_of(1))
        first[0][:] = -777  # ...and mutates what get handed back
        second = cache.get(key_of(1))
        np.testing.assert_array_equal(second[0], entry(7)[0])

    def test_lru_eviction_order(self):
        cache = QueryResultCache(3)
        for tag in (1, 2, 3):
            cache.put(key_of(tag), *entry(tag))
        cache.put(key_of(4), *entry(4))  # evicts 1 (oldest)
        assert cache.get(key_of(1)) is None
        assert cache.get(key_of(2)) is not None  # refreshes 2
        cache.put(key_of(5), *entry(5))  # evicts 3, not the refreshed 2
        assert cache.get(key_of(3)) is None
        assert cache.get(key_of(2)) is not None
        assert cache.stats.evictions == 2
        assert len(cache) == 3

    def test_put_refreshes_existing_key(self):
        cache = QueryResultCache(2)
        cache.put(key_of(1), *entry(1))
        cache.put(key_of(2), *entry(2))
        cache.put(key_of(1), *entry(10))  # refresh, not insert
        cache.put(key_of(3), *entry(3))  # evicts 2 (now oldest)
        assert cache.get(key_of(2)) is None
        np.testing.assert_array_equal(cache.get(key_of(1))[0], entry(10)[0])

    def test_capacity_zero_disables_cleanly(self):
        cache = QueryResultCache(0)
        assert not cache.enabled
        cache.put(key_of(1), *entry(1))
        assert cache.get(key_of(1)) is None
        assert len(cache) == 0
        # A disabled cache counts nothing: it is invisible, not "all miss".
        assert cache.stats.misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            QueryResultCache(-1)

    def test_invalidate_is_per_index(self):
        cache = QueryResultCache(8)
        cache.put(key_of(1, "a"), *entry(1))
        cache.put(key_of(2, "a"), *entry(2))
        cache.put(key_of(1, "b"), *entry(3))
        assert cache.invalidate("a") == 2
        assert cache.get(key_of(1, "a")) is None
        assert cache.get(key_of(2, "a")) is None
        assert cache.get(key_of(1, "b")) is not None
        assert cache.stats.invalidations == 2

    def test_clear_drops_everything(self):
        cache = QueryResultCache(8)
        cache.put(key_of(1), *entry(1))
        cache.put(key_of(2), *entry(2))
        cache.clear()
        assert len(cache) == 0

    def test_key_separates_all_parameters(self):
        query = np.ones(8, dtype=np.float32)
        base = result_cache_key("idx", query, 10, 48, 2)
        assert result_cache_key("other", query, 10, 48, 2) != base
        assert result_cache_key("idx", query * 2, 10, 48, 2) != base
        assert result_cache_key("idx", query, 11, 48, 2) != base
        assert result_cache_key("idx", query, 10, 64, 2) != base
        assert result_cache_key("idx", query, 10, 48, 4) != base
        assert result_cache_key("idx", query, 10, 48, 2, epoch=1) != base


class TestCosineCacheKeys:
    """Cosine-aware keying: scale-invariant (and optionally quantized)."""

    def test_scaled_queries_share_a_cosine_key(self):
        rng = np.random.default_rng(3)
        query = rng.normal(size=12).astype(np.float32)
        base = result_cache_key("idx", query, 10, 48, 2, metric="cosine")
        scaled = result_cache_key(
            "idx", 2.0 * query, 10, 48, 2, metric="cosine"
        )
        assert scaled == base
        # Euclidean keys must keep the raw bytes: scale changes answers.
        assert result_cache_key(
            "idx", 2.0 * query, 10, 48, 2
        ) != result_cache_key("idx", query, 10, 48, 2)

    def test_different_directions_still_differ(self):
        query = np.ones(8, dtype=np.float32)
        other = np.ones(8, dtype=np.float32)
        other[0] = -1.0
        assert result_cache_key(
            "idx", query, 10, 48, 2, metric="cosine"
        ) != result_cache_key("idx", other, 10, 48, 2, metric="cosine")

    def test_zero_vector_is_keyable(self):
        zero = np.zeros(8, dtype=np.float32)
        key = result_cache_key("idx", zero, 10, 48, 2, metric="cosine")
        assert key == result_cache_key("idx", zero, 10, 48, 2, metric="cosine")

    def test_quantization_coalesces_near_duplicates(self):
        rng = np.random.default_rng(4)
        query = rng.normal(size=12).astype(np.float32)
        nearby = query + np.float32(1e-6)
        exact = dict(metric="cosine", quantize_decimals=None)
        fuzzy = dict(metric="cosine", quantize_decimals=3)
        assert result_cache_key(
            "idx", query, 10, 48, 2, **exact
        ) != result_cache_key("idx", nearby, 10, 48, 2, **exact)
        assert result_cache_key(
            "idx", query, 10, 48, 2, **fuzzy
        ) == result_cache_key("idx", nearby, 10, 48, 2, **fuzzy)
        # Quantization buckets, it does not erase direction.
        far = query + np.float32(0.05)
        assert result_cache_key(
            "idx", query, 10, 48, 2, **fuzzy
        ) != result_cache_key("idx", far, 10, 48, 2, **fuzzy)

    def test_quantization_merges_signed_zeros(self):
        """Components straddling zero round to -0.0 vs +0.0, whose byte
        patterns differ; the key must collapse them onto one bucket."""
        up = np.array([1.0, 2e-4], dtype=np.float32)
        down = np.array([1.0, -2e-4], dtype=np.float32)
        fuzzy = dict(metric="cosine", quantize_decimals=3)
        assert result_cache_key(
            "idx", up, 10, 48, 2, **fuzzy
        ) == result_cache_key("idx", down, 10, 48, 2, **fuzzy)

    def test_broker_serves_scaled_heavy_hitter_from_cache(
        self, clustered_data, clustered_queries
    ):
        """End to end: on a cosine index, q and 2q share a cache entry
        and the hit is bit-identical to the cold result.

        (Power-of-two scales are exact in float32, so the normalised
        key bytes match exactly; arbitrary scales like 3q land on the
        same key only under ``cache_quantize_decimals`` -- see the next
        test.)"""
        cosine_config = LannsConfig(
            num_shards=1,
            num_segments=1,
            metric="cosine",
            hnsw=FAST_HNSW,
            seed=9,
        )
        index = build_lanns_index(clustered_data, config=cosine_config)
        searcher = SearcherNode(0)
        searcher.host("cos", index.shards[0])
        broker = Broker([searcher], cosine_config, cache_size=64)
        try:
            query = clustered_queries[0]
            cold_ids, cold_dists = broker.search("cos", query, 10, ef=48)
            for scale in (2.0, 0.5):
                hot_ids, hot_dists = broker.search(
                    "cos", scale * query, 10, ef=48
                )
                np.testing.assert_array_equal(hot_ids, cold_ids)
                np.testing.assert_array_equal(hot_dists, cold_dists)
            stats = broker.stats()["cache"]
            assert stats["hits"] == 2 and stats["misses"] == 1
        finally:
            broker.close()

    def test_broker_quantized_keys_hit_on_near_duplicates(
        self, clustered_data, clustered_queries
    ):
        cosine_config = LannsConfig(
            num_shards=1,
            num_segments=1,
            metric="cosine",
            hnsw=FAST_HNSW,
            seed=9,
        )
        index = build_lanns_index(clustered_data, config=cosine_config)
        searcher = SearcherNode(0)
        searcher.host("cos", index.shards[0])
        broker = Broker(
            [searcher],
            cosine_config,
            cache_size=64,
            cache_quantize_decimals=3,
        )
        try:
            query = clustered_queries[1]
            jittered = query * (1.0 + np.float32(1e-6))
            broker.search("cos", query, 10, ef=48)
            broker.search("cos", jittered, 10, ef=48)
            assert broker.stats()["cache"]["hits"] == 1
        finally:
            broker.close()


class TestBrokerCaching:
    def test_hit_bit_identical_to_cold_miss(
        self, searchers, config, clustered_queries
    ):
        plain = Broker(searchers, config)
        cached = Broker(searchers, config, cache_size=128)
        try:
            for query in clustered_queries[:10]:
                want_ids, want_dists = plain.search("main", query, 10, ef=48)
                cold_ids, cold_dists = cached.search("main", query, 10, ef=48)
                hot_ids, hot_dists = cached.search("main", query, 10, ef=48)
                np.testing.assert_array_equal(cold_ids, want_ids)
                np.testing.assert_array_equal(cold_dists, want_dists)
                np.testing.assert_array_equal(hot_ids, want_ids)
                np.testing.assert_array_equal(hot_dists, want_dists)
            stats = cached.stats()["cache"]
            assert stats["hits"] == 10
            assert stats["misses"] == 10
        finally:
            plain.close()
            cached.close()

    def test_batch_mixes_hits_and_misses(
        self, searchers, config, clustered_queries
    ):
        plain = Broker(searchers, config)
        cached = Broker(searchers, config, cache_size=128)
        try:
            want = plain.search_batch("main", clustered_queries[:6], 5, ef=48)
            # Warm rows 0-2, then serve 0-5: half hits, half misses.
            cached.search_batch("main", clustered_queries[:3], 5, ef=48)
            got = cached.search_batch("main", clustered_queries[:6], 5, ef=48)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])
            stats = cached.stats()["cache"]
            assert stats["hits"] == 3
            assert stats["misses"] == 6
        finally:
            plain.close()
            cached.close()

    def test_default_ef_and_explicit_ef_share_entries(
        self, searchers, config, clustered_queries
    ):
        cached = Broker(searchers, config, cache_size=32)
        try:
            cached.search("main", clustered_queries[0], 5)
            cached.search(
                "main", clustered_queries[0], 5, ef=config.hnsw.ef_search
            )
            stats = cached.stats()["cache"]
            assert stats["hits"] == 1
        finally:
            cached.close()

    def test_capacity_zero_broker_serves_normally(
        self, searchers, config, clustered_queries
    ):
        plain = Broker(searchers, config)
        uncached = Broker(searchers, config, cache_size=0)
        try:
            for query in clustered_queries[:5]:
                np.testing.assert_array_equal(
                    uncached.search("main", query, 5, ef=48)[0],
                    plain.search("main", query, 5, ef=48)[0],
                )
            assert uncached.stats()["cache"]["misses"] == 0
        finally:
            plain.close()
            uncached.close()


class TestServiceInvalidation:
    def test_redeploy_under_same_name_invalidates_stale_entries(
        self, fs, clustered_data, clustered_queries, config
    ):
        full = build_lanns_index(clustered_data, config=config)
        subset = build_lanns_index(clustered_data[:300], config=config)
        save_lanns_index(full, fs, "prod/full")
        save_lanns_index(subset, fs, "prod/subset")

        service = OnlineService(cache_size=128)
        service.deploy(fs, "prod/full", index_name="x")
        # Pick a query whose answer proves which corpus answered: the
        # subset index only holds rows < 300.
        probe = None
        for query in clustered_queries:
            ids, _ = service.query(query, 10, index_name="x")
            if (ids >= 300).any():
                probe = query
                break
        assert probe is not None, "no query distinguishes the two indices"
        stale_ids, _ = service.query(probe, 10, index_name="x")  # cache hit
        assert service.cache.stats.hits >= 1
        old_epoch = service.brokers["x"].cache_epoch

        service.undeploy("x")
        assert service.cache.stats.invalidations > 0
        service.deploy(fs, "prod/subset", index_name="x")
        # The epoch fence: even a put racing past the invalidation above
        # could never be keyed like the new deployment's lookups.
        assert service.brokers["x"].cache_epoch > old_epoch
        fresh_ids, fresh_dists = service.query(probe, 10, index_name="x")
        assert (fresh_ids < 300).all(), "stale cached result served"
        want_ids, want_dists = subset.query(probe, 10)
        np.testing.assert_array_equal(fresh_ids, want_ids)
        np.testing.assert_array_equal(fresh_dists, want_dists)
        service.close()

    def test_undeploy_drains_admitted_requests_before_unhost(
        self, fs, clustered_data, clustered_queries, config
    ):
        """Requests already admitted when undeploy starts must be served
        against still-hosted searchers, never KeyError'd mid-drain."""
        import threading
        import time

        index = build_lanns_index(clustered_data, config=config)
        save_lanns_index(index, fs, "prod/full")
        # A long flush deadline parks admitted requests in the queue, so
        # undeploy provably starts with them still pending; its
        # close()-drain (not the timer) is what must execute them.
        service = OnlineService(
            parallel_fanout=True, max_batch=64, max_wait_ms=2000.0
        )
        broker = service.deploy(fs, "prod/full", index_name="x")
        results: dict[int, tuple] = {}
        errors: list[BaseException] = []

        def client(worker):
            try:
                results[worker] = service.query(
                    clustered_queries[worker], 5, index_name="x"
                )
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(worker,), daemon=True)
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        deadline = time.perf_counter() + 30.0
        while (
            broker._batcher.stats["blocks_admitted"] < 4
            and time.perf_counter() < deadline
        ):
            time.sleep(0.001)
        assert broker._batcher.stats["blocks_admitted"] == 4
        service.undeploy("x")
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, f"admitted request failed mid-drain: {errors[0]}"
        for worker, (ids, dists) in results.items():
            want_ids, want_dists = index.query(clustered_queries[worker], 5)
            np.testing.assert_array_equal(ids, want_ids)
            np.testing.assert_array_equal(dists, want_dists)

    def test_cache_shared_across_deployed_indices(
        self, fs, clustered_data, clustered_queries, config
    ):
        full = build_lanns_index(clustered_data, config=config)
        save_lanns_index(full, fs, "prod/full")
        service = OnlineService(cache_size=128)
        service.deploy(fs, "prod/full", index_name="a")
        service.deploy(fs, "prod/full", index_name="b")
        query = clustered_queries[0]
        service.query(query, 5, index_name="a")
        service.query(query, 5, index_name="b")  # same bytes, other index
        assert service.cache.stats.hits == 0  # keys carry the index name
        service.query(query, 5, index_name="a")
        assert service.cache.stats.hits == 1
        assert len(service.cache) == 2
        service.close()
