"""Tests for the HNSW search primitives on hand-built graphs."""

import numpy as np
import pytest

from repro.distance.scorer import Scorer
from repro.hnsw.graph import HnswGraph, VisitedTable
from repro.hnsw.search import descend_to_level, greedy_descent, search_layer


def line_graph(num_points: int):
    """Points at x=0..n-1 on a line, chained bidirectionally at level 0."""
    scorer = Scorer("euclidean", 2)
    points = np.zeros((num_points, 2), dtype=np.float32)
    points[:, 0] = np.arange(num_points)
    scorer.add(points)
    graph = HnswGraph()
    for _index in range(num_points):
        graph.add_node(0)
    for index in range(num_points - 1):
        graph.add_link(index, 0, index + 1)
        graph.add_link(index + 1, 0, index)
    graph.entry_point = 0
    graph.max_level = 0
    return graph, scorer


class TestGreedyDescent:
    def test_walks_to_local_minimum(self):
        graph, scorer = line_graph(10)
        query = scorer.prepare_query(np.array([7.2, 0.0], dtype=np.float32))
        entry_dist = float(scorer.score_ids(query, np.array([0]))[0])
        node, dist = greedy_descent(graph, scorer, query, 0, entry_dist, 0)
        assert node == 7
        assert dist == pytest.approx((7.2 - 7.0) ** 2, abs=1e-4)

    def test_stays_put_when_no_improvement(self):
        graph, scorer = line_graph(5)
        query = scorer.prepare_query(np.array([0.0, 0.0], dtype=np.float32))
        entry_dist = float(scorer.score_ids(query, np.array([0]))[0])
        node, _ = greedy_descent(graph, scorer, query, 0, entry_dist, 0)
        assert node == 0

    def test_isolated_node_returns_itself(self):
        scorer = Scorer("euclidean", 2)
        scorer.add(np.zeros((1, 2), dtype=np.float32))
        graph = HnswGraph()
        graph.add_node(0)
        graph.entry_point = 0
        graph.max_level = 0
        query = scorer.prepare_query(np.ones(2, dtype=np.float32))
        node, _ = greedy_descent(graph, scorer, query, 0, 2.0, 0)
        assert node == 0


class TestSearchLayer:
    def test_finds_all_near_neighbors_on_line(self):
        graph, scorer = line_graph(20)
        query = scorer.prepare_query(np.array([10.0, 0.0], dtype=np.float32))
        visited = VisitedTable(20)
        visited.reset(20)
        entry_dist = float(scorer.score_ids(query, np.array([0]))[0])
        results = search_layer(
            graph, scorer, query, [(entry_dist, 0)], ef=5, level=0,
            visited=visited,
        )
        found = [node for _, node in results]
        assert found[0] == 10
        assert set(found) == {8, 9, 10, 11, 12}

    def test_results_sorted_ascending(self):
        graph, scorer = line_graph(15)
        query = scorer.prepare_query(np.array([3.4, 0.0], dtype=np.float32))
        visited = VisitedTable(15)
        visited.reset(15)
        entry_dist = float(scorer.score_ids(query, np.array([14]))[0])
        results = search_layer(
            graph, scorer, query, [(entry_dist, 14)], ef=6, level=0,
            visited=visited,
        )
        dists = [dist for dist, _ in results]
        assert dists == sorted(dists)

    def test_beam_width_bounds_results(self):
        graph, scorer = line_graph(30)
        query = scorer.prepare_query(np.array([15.0, 0.0], dtype=np.float32))
        for ef in (1, 3, 8):
            visited = VisitedTable(30)
            visited.reset(30)
            entry_dist = float(scorer.score_ids(query, np.array([0]))[0])
            results = search_layer(
                graph, scorer, query, [(entry_dist, 0)], ef=ef, level=0,
                visited=visited,
            )
            assert len(results) <= ef

    def test_respects_pre_visited_entries(self):
        graph, scorer = line_graph(6)
        query = scorer.prepare_query(np.array([0.0, 0.0], dtype=np.float32))
        visited = VisitedTable(6)
        visited.reset(6)
        entry_dist = float(scorer.score_ids(query, np.array([0]))[0])
        results = search_layer(
            graph, scorer, query, [(entry_dist, 0)], ef=10, level=0,
            visited=visited,
        )
        # Every reachable node fits in the beam.
        assert len(results) == 6


class TestDescendToLevel:
    def test_multi_layer_descent(self):
        # Two levels: level-1 long edges 0 <-> 9, level-0 chain.
        scorer = Scorer("euclidean", 2)
        points = np.zeros((10, 2), dtype=np.float32)
        points[:, 0] = np.arange(10)
        scorer.add(points)
        graph = HnswGraph()
        graph.add_node(1)  # node 0 on levels 0 and 1
        for _ in range(8):
            graph.add_node(0)
        graph.add_node(1)  # node 9 on levels 0 and 1
        for index in range(9):
            graph.add_link(index, 0, index + 1)
            graph.add_link(index + 1, 0, index)
        graph.add_link(0, 1, 9)
        graph.add_link(9, 1, 0)
        graph.entry_point = 0
        graph.max_level = 1
        query = scorer.prepare_query(np.array([8.6, 0.0], dtype=np.float32))
        entry, dist = descend_to_level(graph, scorer, query, 0)
        # Level-1 descent should jump to node 9 (closer than node 0).
        assert entry == 9
