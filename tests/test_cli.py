"""Tests for the command-line interface (build / query / info)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import write_fvecs
from tests.conftest import make_clustered


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    data = make_clustered(400, 10, seed=41)
    queries = data[:12] + 0.01
    np.save(root / "data.npy", data)
    np.save(root / "queries.npy", queries)
    write_fvecs(root / "data.fvecs", data)
    return root, data, queries


def build_args(root, extra=()):
    return [
        "build",
        "--root", str(root / "hdfs"),
        "--data", str(root / "data.npy"),
        "--out", "idx",
        "--shards", "2",
        "--segments", "2",
        "--segmenter", "rh",
        "--hnsw-m", "8",
        "--ef-construction", "48",
        *extra,
    ]


class TestBuild:
    def test_build_writes_index(self, corpus, capsys):
        root, data, _ = corpus
        assert main(build_args(root)) == 0
        out = capsys.readouterr().out
        assert f"built {len(data)} vectors" in out
        assert (root / "hdfs" / "idx" / "metadata.json").exists()

    def test_build_from_fvecs(self, corpus, capsys):
        root, _, _ = corpus
        args = build_args(root)
        args[args.index("--data") + 1] = str(root / "data.fvecs")
        args[args.index("--out") + 1] = "idx-fvecs"
        assert main(args) == 0

    def test_unsupported_format_rejected(self, corpus):
        root, _, _ = corpus
        args = build_args(root)
        args[args.index("--data") + 1] = str(root / "data.csv")
        with pytest.raises(SystemExit):
            main(args)


class TestQuery:
    def test_query_prints_results(self, corpus, capsys):
        root, _, _ = corpus
        main(build_args(root))
        capsys.readouterr()
        code = main(
            [
                "query",
                "--root", str(root / "hdfs"),
                "--index", "idx",
                "--queries", str(root / "queries.npy"),
                "--top-k", "5",
                "--ef", "48",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "answered 12 queries" in out
        assert "query 0:" in out

    def test_query_writes_npz(self, corpus, capsys, tmp_path):
        root, data, queries = corpus
        main(build_args(root))
        out_file = tmp_path / "results.npz"
        main(
            [
                "query",
                "--root", str(root / "hdfs"),
                "--index", "idx",
                "--queries", str(root / "queries.npy"),
                "--top-k", "3",
                "--out", str(out_file),
                "--no-checkpoint",
            ]
        )
        with np.load(out_file) as archive:
            assert archive["ids"].shape == (len(queries), 3)
            # Queries are near-copies of the first rows; top-1 must match.
            assert archive["ids"][0, 0] == 0


class TestInfo:
    def test_info_prints_manifest(self, corpus, capsys):
        root, data, _ = corpus
        main(build_args(root))
        capsys.readouterr()
        code = main(
            ["info", "--root", str(root / "hdfs"), "--index", "idx"]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["total_vectors"] == len(data)
        assert payload["config"]["segmenter"] == "rh"
        assert "checksums" not in payload  # elided for readability


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_segmenter_rejected(self, corpus):
        root, _, _ = corpus
        with pytest.raises(SystemExit):
            main(build_args(root, extra=["--segmenter", "annoy"]))


class TestServeAndRemoteQuery:
    def test_query_through_remote_searchers(self, corpus, capsys):
        from repro.net.server import SearcherServer
        from repro.online.searcher import SearcherNode

        root, _, _ = corpus
        args = build_args(root)
        args[args.index("--out") + 1] = "idx-remote"
        assert main(args) == 0
        servers = [
            SearcherServer(
                SearcherNode(shard_id), root=str(root / "hdfs")
            ).start_in_thread()
            for shard_id in range(2)
        ]
        try:
            capsys.readouterr()
            code = main(
                [
                    "query",
                    "--root", str(root / "hdfs"),
                    "--index", "idx-remote",
                    "--queries", str(root / "queries.npy"),
                    "--top-k", "5",
                    "--searchers",
                    ",".join(server.address for server in servers),
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "2 remote searchers" in out
            assert "DEGRADED" not in out
            # The undeploy at the end must leave the fleet clean.
            assert servers[0].node.hosted_indices == []
        finally:
            for server in servers:
                server.stop()

    def test_serve_searcher_requires_shard_id(self):
        with pytest.raises(SystemExit):
            main(["serve-searcher"])

    def test_stats_and_traced_query_against_live_fleet(
        self, corpus, capsys, tmp_path
    ):
        from repro.net.server import SearcherServer
        from repro.online.searcher import SearcherNode

        root, _, _ = corpus
        args = build_args(root)
        args[args.index("--out") + 1] = "idx-obs"
        assert main(args) == 0
        servers = [
            SearcherServer(
                SearcherNode(shard_id), root=str(root / "hdfs")
            ).start_in_thread()
            for shard_id in range(2)
        ]
        try:
            spec = ",".join(server.address for server in servers)
            trace_out = tmp_path / "trace.json"
            capsys.readouterr()
            code = main(
                [
                    "query",
                    "--root", str(root / "hdfs"),
                    "--index", "idx-obs",
                    "--queries", str(root / "queries.npy"),
                    "--top-k", "5",
                    "--searchers", spec,
                    "--trace-out", str(trace_out),
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "cost:" in out
            assert trace_out.exists()

            # The written trace pretty-prints through `repro.cli trace`.
            assert main(["trace", "--file", str(trace_out)]) == 0
            rendered = capsys.readouterr().out
            assert "trace " in rendered
            assert "fanout" in rendered
            assert "merge" in rendered
            assert "decode" in rendered  # remote spans crossed the wire

            # `repro.cli stats` merges the fleet's metric snapshots.
            assert main(["stats", "--searchers", spec]) == 0
            out = capsys.readouterr().out
            for server in servers:
                assert f"# searcher {server.address}: shard" in out
            assert "# TYPE" in out  # merged Prometheus exposition
            assert "lanns_" in out

            assert main(["stats", "--searchers", spec, "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert set(payload) == {server.address for server in servers}
        finally:
            for server in servers:
                server.stop()

    def test_min_graph_size_flag_flows_into_build(self, corpus):
        from repro.storage.hdfs import LocalHdfs
        from repro.storage.manifest import load_manifest

        root, _, _ = corpus
        args = build_args(root, extra=["--min-graph-size", "64"])
        args[args.index("--out") + 1] = "idx-scan"
        assert main(args) == 0
        manifest = load_manifest(LocalHdfs(root / "hdfs"), "idx-scan")
        assert manifest.lanns_config.hnsw.min_graph_size == 64
