"""Remote serving tests: loopback RPC parity and transport failure modes.

Parity, micro-batching and caching run against *in-thread* asyncio
searcher servers (real sockets, fast startup); the kill-mid-flight test
spawns *real searcher subprocesses* so a SIGKILL exercises genuine
connection-reset paths.  Failure taxonomy under test:

- connection refused at deploy -> raises (and rolls back the fleet);
- request timeout under ``degrade`` -> annotated partial results, under
  ``fail`` -> raises;
- searcher process killed mid-flight under ``degrade`` -> exact merge of
  the surviving shards, ``shards_answered`` reported;
- structured server-side errors (unknown index) -> re-raised under
  either policy (a caller bug is not a dead shard).
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    RemoteCallError,
    TransportError,
)
from repro.net.client import AsyncRemoteSearcherClient, RemoteSearcherClient
from repro.net.protocol import MsgType
from repro.net.server import SearcherServer
from repro.net.transport import RemoteSearcherTransport
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode
from repro.online.service import OnlineService
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index
from tests.conftest import FAST_HNSW, make_clustered

NUM_SHARDS = 3
INDEX_PATH = "prod/remote"


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=NUM_SHARDS,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=17,
    )


@pytest.fixture(scope="module")
def corpus():
    return make_clustered(600, 16, seed=21)


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(22)
    rows = rng.integers(0, corpus.shape[0], size=24)
    noise = rng.normal(scale=0.2, size=(24, corpus.shape[1]))
    return (corpus[rows] + noise).astype(np.float32)


@pytest.fixture(scope="module")
def shared_fs(tmp_path_factory):
    return LocalHdfs(tmp_path_factory.mktemp("remote-hdfs"))


@pytest.fixture(scope="module")
def index(corpus, config, shared_fs):
    built = build_lanns_index(corpus, config=config)
    save_lanns_index(built, shared_fs, INDEX_PATH)
    return built


@pytest.fixture(scope="module")
def servers(shared_fs, index):
    """Three in-thread asyncio searcher servers over loopback."""
    fleet = [
        SearcherServer(
            SearcherNode(shard_id), root=str(shared_fs.root)
        ).start_in_thread()
        for shard_id in range(NUM_SHARDS)
    ]
    yield fleet
    for server in fleet:
        server.stop()


@pytest.fixture(scope="module")
def addresses(servers):
    return [server.address for server in servers]


@contextlib.contextmanager
def black_hole():
    """A listener that accepts connections and never responds."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(8)
    port = sock.getsockname()[1]
    stop = threading.Event()
    accepted: list[socket.socket] = []

    def accept_loop():
        sock.settimeout(0.1)
        while not stop.is_set():
            try:
                conn, _ = sock.accept()
                accepted.append(conn)
            except TimeoutError:
                continue
            except OSError:
                return

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    try:
        yield f"127.0.0.1:{port}"
    finally:
        stop.set()
        thread.join(timeout=10)
        for conn in accepted:
            conn.close()
        sock.close()


def refused_address() -> str:
    """An address nothing listens on (bound, never listened, closed)."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return f"127.0.0.1:{port}"


class TestRemoteParity:
    def test_remote_results_bit_identical_to_in_process(
        self, shared_fs, addresses, queries, index
    ):
        local = OnlineService()
        remote = OnlineService(searchers=addresses, parallel_fanout=True)
        try:
            local.deploy(shared_fs, INDEX_PATH, index_name="p")
            remote.deploy(shared_fs, INDEX_PATH, index_name="p")
            want_ids, want_dists = local.query_batch(
                queries, 10, index_name="p"
            )
            got_ids, got_dists, info = remote.query_batch(
                queries, 10, index_name="p", with_info=True
            )
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_array_equal(got_dists, want_dists)
            assert (info["shards_answered"] == NUM_SHARDS).all()
            assert info["num_shards"] == NUM_SHARDS
            # Single-query path through the same wire.
            for row in range(5):
                w_ids, w_dists = local.query(
                    queries[row], 10, index_name="p"
                )
                r_ids, r_dists = remote.query(
                    queries[row], 10, index_name="p"
                )
                np.testing.assert_array_equal(r_ids, w_ids)
                np.testing.assert_array_equal(r_dists, w_dists)
            remote.undeploy("p")
        finally:
            local.close()
            remote.close()

    def test_microbatcher_and_cache_compose_with_remote_transport(
        self, shared_fs, addresses, queries, index
    ):
        """The PR-2 admission layer + result cache, unchanged, in front
        of the remote fleet: concurrent singles stay bit-identical and
        repeats hit the cache."""
        local = OnlineService()
        remote = OnlineService(
            searchers=addresses,
            parallel_fanout=True,
            max_batch=8,
            max_wait_ms=5.0,
            cache_size=256,
        )
        try:
            local.deploy(shared_fs, INDEX_PATH, index_name="mb")
            remote.deploy(shared_fs, INDEX_PATH, index_name="mb")
            expected = [
                local.query(query, 8, index_name="mb") for query in queries
            ]
            errors: list[BaseException] = []

            def client(worker: int) -> None:
                try:
                    for _repeat in range(2):
                        for row in range(
                            worker, queries.shape[0], 6
                        ):
                            ids, dists = remote.query(
                                queries[row], 8, index_name="mb"
                            )
                            np.testing.assert_array_equal(
                                ids, expected[row][0]
                            )
                            np.testing.assert_array_equal(
                                dists, expected[row][1]
                            )
                except BaseException as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(worker,), daemon=True)
                for worker in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
            assert not errors, f"concurrent remote client failed: {errors[0]}"
            stats = remote.brokers["mb"].stats()
            assert stats["cache"]["hits"] > 0
            assert stats["microbatch"]["rows_executed"] > 0
            remote.undeploy("mb")
        finally:
            local.close()
            remote.close()

    def test_remote_stats_rpc(self, shared_fs, addresses, index):
        remote = OnlineService(searchers=addresses)
        try:
            remote.deploy(shared_fs, INDEX_PATH, index_name="st")
            stats = remote.searchers[0].stats()
            assert stats["shard_id"] == 0
            assert "st" in stats["hosted_indices"]
            assert stats["memory_vectors"] > 0
            remote.undeploy("st")
            assert "st" not in remote.searchers[0].stats()["hosted_indices"]
        finally:
            remote.close()


class TestDeployFailures:
    def test_connection_refused_at_deploy_raises_and_rolls_back(
        self, shared_fs, addresses, index
    ):
        fleet = [addresses[0], addresses[1], refused_address()]
        service = OnlineService(searchers=fleet, rpc_retries=0)
        try:
            with pytest.raises(ConnectionLostError, match="connect"):
                service.deploy(shared_fs, INDEX_PATH, index_name="cr")
        finally:
            service.close()
        # The two reachable searchers must not be left half-deployed.
        for address in addresses[:2]:
            client = RemoteSearcherClient(address)
            try:
                assert "cr" not in client.stats()["hosted_indices"]
            finally:
                client.close()

    def test_degrade_policy_deploys_onto_surviving_fleet(
        self, shared_fs, addresses, queries, index
    ):
        """Under ``degrade``, a dead fleet member at deploy time is
        tolerated: the index deploys onto the survivors and serving
        returns annotated partial results immediately."""
        fleet = [addresses[0], addresses[1], refused_address()]
        service = OnlineService(
            searchers=fleet,
            parallel_fanout=True,
            partial_policy="degrade",
            request_timeout_s=5.0,
            rpc_retries=0,
        )
        try:
            service.deploy(shared_fs, INDEX_PATH, index_name="dd")
            probe = queries[:4]
            got_ids, got_dists, info = service.query_batch(
                probe, 10, index_name="dd", with_info=True
            )
            assert (info["shards_answered"] == NUM_SHARDS - 1).all()
            budget = service.brokers["dd"].per_shard_budget(10)
            parts = [
                index.shards[shard].search_batch(probe, budget)
                for shard in (0, 1)
            ]
            want_ids, want_dists = merge_shard_results_batch(parts, 10)
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_array_equal(got_dists, want_dists)
            service.undeploy("dd")
        finally:
            service.close()

    def test_wrong_shard_position_rejected_at_deploy(
        self, shared_fs, addresses, index
    ):
        # Shard 1's server listed at position 0: the ping handshake
        # must catch the mis-wiring before any deploy RPC.
        fleet = [addresses[1], addresses[0], addresses[2]]
        service = OnlineService(searchers=fleet)
        try:
            with pytest.raises(ValueError, match="serves shard"):
                service.deploy(shared_fs, INDEX_PATH, index_name="mw")
        finally:
            service.close()

    def test_unknown_index_fails_under_both_policies(
        self, config, addresses, servers, index
    ):
        """An index NO shard hosts is a caller bug and must raise: under
        ``fail`` as the shard's own error, under ``degrade`` as
        all-shards-failed (every shard KeyErrors, and an all-failed
        request always raises)."""
        for policy, expected in (
            ("fail", RemoteCallError),
            ("degrade", TransportError),
        ):
            transports = [
                RemoteSearcherTransport(address, shard_id)
                for shard_id, address in enumerate(addresses)
            ]
            broker = Broker(transports, config, partial_policy=policy)
            try:
                with pytest.raises(expected) as excinfo:
                    broker.search_batch(
                        "never-deployed", np.zeros((1, 16), np.float32), 5
                    )
                if policy == "degrade":
                    # The cause trail must still name the real error.
                    assert isinstance(excinfo.value.__cause__, RemoteCallError)
            finally:
                broker.close()
                for transport in transports:
                    transport.close()

    def test_partially_hosted_index_degrades_like_a_dead_shard(
        self, shared_fs, config, addresses, queries, servers, index
    ):
        """A live searcher that does not host the index (restarted, or
        missed a degraded deploy) must degrade, not poison every
        request: its rows are as gone as a dead shard's."""
        clients = [RemoteSearcherClient(address) for address in addresses]
        probe = queries[:4]
        try:
            # Host on shards 0 and 1 only; shard 2 is alive but empty.
            for client in clients[:2]:
                client.deploy("ph", INDEX_PATH, root=str(shared_fs.root))
            transports = [
                RemoteSearcherTransport(address, shard_id)
                for shard_id, address in enumerate(addresses)
            ]
            broker = Broker(
                transports, config, partial_policy="degrade"
            )
            try:
                ids, dists, info = broker.search_batch(
                    "ph", probe, 10, with_info=True
                )
                assert (info["shards_answered"] == 2).all()
                budget = broker.per_shard_budget(10)
                parts = [
                    index.shards[shard].search_batch(probe, budget)
                    for shard in (0, 1)
                ]
                want_ids, want_dists = merge_shard_results_batch(parts, 10)
                np.testing.assert_array_equal(ids, want_ids)
                np.testing.assert_array_equal(dists, want_dists)
            finally:
                broker.close()
                for transport in transports:
                    transport.close()
        finally:
            for client in clients[:2]:
                with contextlib.suppress(TransportError):
                    client.undeploy("ph")
            for client in clients:
                client.close()


class TestTimeouts:
    def test_timeout_degrades_with_annotation_and_fail_raises(
        self, shared_fs, config, queries, index, servers, addresses
    ):
        probe = queries[:6]
        with black_hole() as silent:
            live = [
                RemoteSearcherClient(address) for address in addresses[:2]
            ]
            try:
                for client in live:
                    client.deploy(
                        "tmo", INDEX_PATH, root=str(shared_fs.root)
                    )
                transports = [
                    RemoteSearcherTransport(addresses[0], 0),
                    RemoteSearcherTransport(addresses[1], 1),
                    RemoteSearcherTransport(silent, 2, retries=0),
                ]
                degrade = Broker(
                    transports,
                    config,
                    parallel_fanout=True,
                    partial_policy="degrade",
                    request_timeout_s=0.5,
                )
                try:
                    ids, dists, info = degrade.search_batch(
                        "tmo", probe, 10, with_info=True
                    )
                    assert (info["shards_answered"] == 2).all()
                    budget = degrade.per_shard_budget(10)
                    parts = [
                        index.shards[shard].search_batch(probe, budget)
                        for shard in (0, 1)
                    ]
                    want_ids, want_dists = merge_shard_results_batch(
                        parts, 10
                    )
                    np.testing.assert_array_equal(ids, want_ids)
                    np.testing.assert_array_equal(dists, want_dists)
                    stats = degrade.stats()["partial"]
                    assert stats["degraded_batches"] >= 1
                    assert stats["shard_failures"][2] >= 1
                finally:
                    degrade.close()

                strict = Broker(
                    [
                        RemoteSearcherTransport(addresses[0], 0),
                        RemoteSearcherTransport(addresses[1], 1),
                        RemoteSearcherTransport(silent, 2, retries=0),
                    ],
                    config,
                    parallel_fanout=True,
                    partial_policy="fail",
                    request_timeout_s=0.5,
                )
                try:
                    with pytest.raises(
                        (DeadlineExceededError, TransportError)
                    ):
                        strict.search_batch("tmo", probe, 10)
                finally:
                    for transport in strict.transports:
                        transport.close()
                    strict.close()
            finally:
                for client in live:
                    with contextlib.suppress(TransportError):
                        client.undeploy("tmo")
                    client.close()


class TestDeadlineCauseChaining:
    """A deadline that expires while retrying a *connectivity* failure
    must keep that failure as ``__cause__``: a refused connection that
    reads as a plain timeout sends the operator debugging the wrong
    thing (slow searcher vs searcher not listening at all)."""

    def test_sync_client_deadline_chains_connectivity_cause(self):
        client = RemoteSearcherClient(
            refused_address(), retries=3, backoff_s=0.05
        )
        try:
            with pytest.raises(DeadlineExceededError) as excinfo:
                client.call(
                    MsgType.PING, deadline=time.monotonic() + 0.02
                )
            assert isinstance(excinfo.value.__cause__, ConnectionLostError)
        finally:
            client.close()

    def test_async_client_deadline_chains_connectivity_cause(self):
        async def scenario():
            client = AsyncRemoteSearcherClient(
                refused_address(), retries=3, backoff_s=0.05
            )
            try:
                with pytest.raises(DeadlineExceededError) as excinfo:
                    await client.call(
                        MsgType.PING, deadline=time.monotonic() + 0.02
                    )
                assert isinstance(
                    excinfo.value.__cause__, ConnectionLostError
                )
            finally:
                client.close()

        asyncio.run(scenario())


class TestKilledSearcherProcess:
    def test_kill_one_of_three_processes_mid_flight(
        self, shared_fs, queries, index
    ):
        """Real subprocesses: SIGKILL one searcher between requests; the
        degrade policy answers from the survivors with annotation, the
        fail policy raises."""
        from repro.net.fleet import fleet_addresses, launch_fleet, shutdown_fleet

        fleet = launch_fleet(NUM_SHARDS, root=str(shared_fs.root))
        probe = queries[:8]
        degrade = None
        strict = None
        try:
            degrade = OnlineService(
                searchers=fleet_addresses(fleet),
                parallel_fanout=True,
                partial_policy="degrade",
                request_timeout_s=10.0,
                rpc_retries=0,
            )
            strict = OnlineService(
                searchers=fleet_addresses(fleet),
                parallel_fanout=True,
                partial_policy="fail",
                request_timeout_s=10.0,
                rpc_retries=0,
            )
            degrade.deploy(shared_fs, INDEX_PATH, index_name="kill")
            strict.deploy(shared_fs, INDEX_PATH, index_name="strictkill")
            ids, dists, info = degrade.query_batch(
                probe, 10, index_name="kill", with_info=True
            )
            assert (info["shards_answered"] == NUM_SHARDS).all()

            victim = fleet[1]
            victim.kill()
            assert not victim.alive()

            got_ids, got_dists, info = degrade.query_batch(
                probe, 10, index_name="kill", with_info=True
            )
            assert (info["shards_answered"] == NUM_SHARDS - 1).all()
            broker = degrade.brokers["kill"]
            budget = broker.per_shard_budget(10)
            parts = [
                index.shards[shard].search_batch(probe, budget)
                for shard in range(NUM_SHARDS)
                if shard != victim.shard_id
            ]
            want_ids, want_dists = merge_shard_results_batch(parts, 10)
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_array_equal(got_dists, want_dists)
            assert broker.stats()["partial"]["shard_failures"][1] >= 1

            with pytest.raises(TransportError):
                strict.query_batch(probe, 10, index_name="strictkill")
        finally:
            if degrade is not None:
                degrade.close()
            if strict is not None:
                strict.close()
            shutdown_fleet(fleet)
