"""Tests for LannsBuilder: partitioning semantics and construction."""

import numpy as np
import pytest

from repro.core.builder import LannsBuilder, build_lanns_index
from repro.core.config import LannsConfig
from repro.segmenters.learner import learn_segmenter
from repro.sharding.sharder import HashSharder
from repro.sparklite.cluster import LocalCluster
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=3,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=2,
    )


class TestPartition:
    def test_every_partition_key_present(self, clustered_data, config):
        builder = LannsBuilder(config)
        segmenter = builder.learn_segmenter(clustered_data)
        ids = np.arange(len(clustered_data), dtype=np.int64)
        partitions = builder.partition(clustered_data, ids, segmenter)
        assert set(partitions) == {
            (shard, segment) for shard in range(3) for segment in range(2)
        }

    def test_shard_assignment_matches_sharder(self, clustered_data, config):
        builder = LannsBuilder(config)
        segmenter = builder.learn_segmenter(clustered_data)
        ids = np.arange(len(clustered_data), dtype=np.int64)
        partitions = builder.partition(clustered_data, ids, segmenter)
        sharder = HashSharder(config.num_shards)
        for (shard, _segment), (part_ids, _vectors) in partitions.items():
            for item in part_ids.tolist():
                assert sharder.shard_of(item) == shard

    def test_virtual_spill_partitions_cover_exactly_once(self, clustered_data, config):
        builder = LannsBuilder(config)
        segmenter = builder.learn_segmenter(clustered_data)
        ids = np.arange(len(clustered_data), dtype=np.int64)
        partitions = builder.partition(clustered_data, ids, segmenter)
        all_ids = np.concatenate([p[0] for p in partitions.values()])
        assert sorted(all_ids.tolist()) == ids.tolist()

    def test_physical_spill_duplicates_across_segments_not_shards(self, clustered_data):
        config = LannsConfig(
            num_shards=2,
            num_segments=2,
            segmenter="rh",
            spill_mode="physical",
            alpha=0.2,
            hnsw=FAST_HNSW,
            segmenter_sample_size=600,
        )
        builder = LannsBuilder(config)
        segmenter = builder.learn_segmenter(clustered_data)
        ids = np.arange(len(clustered_data), dtype=np.int64)
        partitions = builder.partition(clustered_data, ids, segmenter)
        all_ids = np.concatenate([p[0] for p in partitions.values()])
        assert len(all_ids) > len(clustered_data)  # duplication happened
        # But any id appears in at most one *shard*.
        sharder = HashSharder(2)
        for (shard, _segment), (part_ids, _vectors) in partitions.items():
            for item in part_ids.tolist():
                assert sharder.shard_of(item) == shard

    def test_vectors_match_ids(self, clustered_data, config):
        builder = LannsBuilder(config)
        segmenter = builder.learn_segmenter(clustered_data)
        ids = np.arange(len(clustered_data), dtype=np.int64)
        partitions = builder.partition(clustered_data, ids, segmenter)
        for part_ids, part_vectors in partitions.values():
            for position, item in enumerate(part_ids.tolist()):
                np.testing.assert_array_equal(
                    part_vectors[position], clustered_data[item]
                )


class TestBuild:
    def test_build_with_custom_ids(self, clustered_data, config):
        ids = np.arange(len(clustered_data)) * 7 + 3
        index = build_lanns_index(clustered_data, ids=ids, config=config)
        found, _ = index.query(clustered_data[10], 1, ef=48)
        assert found[0] == ids[10]

    def test_build_rejects_bad_id_shape(self, clustered_data, config):
        with pytest.raises(ValueError, match="shape"):
            build_lanns_index(
                clustered_data, ids=np.arange(5), config=config
            )

    def test_build_with_pretrained_segmenter(self, clustered_data, config):
        segmenter = learn_segmenter(
            clustered_data, "rh", 2, seed=2, spill_mode="virtual"
        )
        index = build_lanns_index(
            clustered_data, config=config, segmenter=segmenter
        )
        assert index.segmenter is segmenter

    def test_segment_count_mismatch_rejected(self, clustered_data, config):
        wrong = learn_segmenter(clustered_data, "rh", 4, seed=2)
        with pytest.raises(ValueError, match="segments"):
            build_lanns_index(clustered_data, config=config, segmenter=wrong)

    def test_build_on_cluster_matches_inline(self, clustered_data, config):
        inline = build_lanns_index(clustered_data, config=config)
        cluster = LocalCluster(num_executors=4)
        clustered = build_lanns_index(
            clustered_data, config=config, cluster=cluster
        )
        query = clustered_data[0]
        np.testing.assert_array_equal(
            inline.query(query, 5)[0], clustered.query(query, 5)[0]
        )
        # The build stage was recorded with one task per partition.
        stage = cluster.last_stage()
        assert stage.stage == "hnsw-build"
        assert len(stage.tasks) == config.total_partitions

    def test_per_segment_seeds_differ(self, clustered_data):
        """Each partition's HNSW gets its own derived seed (level draws
        should not be identical across segments)."""
        config = LannsConfig(
            num_segments=2,
            segmenter="rs",
            hnsw=FAST_HNSW,
            segmenter_sample_size=600,
        )
        index = build_lanns_index(clustered_data, config=config)
        seg_a, seg_b = index.shards[0].segments
        assert seg_a.params.seed != seg_b.params.seed
