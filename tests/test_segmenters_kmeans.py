"""Tests for the k-means segmenter (extensibility demonstration)."""

import numpy as np
import pytest

from repro.errors import SegmenterNotFittedError
from repro.segmenters.base import segmenter_from_dict
from repro.segmenters.kmeans_segmenter import KMeansSegmenter
from tests.conftest import make_clustered


@pytest.fixture(scope="module")
def data():
    # Overlapping clusters (small center scale): boundary traffic exists,
    # so the spill machinery has something to do.
    return make_clustered(800, 10, num_clusters=6, seed=51, scale=2.0)


@pytest.fixture(scope="module")
def fitted(data):
    return KMeansSegmenter(6, spill_threshold=0.7, seed=0).fit(data)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            KMeansSegmenter(0)
        with pytest.raises(ValueError):
            KMeansSegmenter(4, spill_threshold=0.0)
        with pytest.raises(ValueError):
            KMeansSegmenter(4, spill_threshold=1.5)
        with pytest.raises(ValueError):
            KMeansSegmenter(4, spill_mode="none")
        with pytest.raises(ValueError):
            KMeansSegmenter(4, kmeans_iters=0)

    def test_non_power_of_two_allowed(self, data):
        segmenter = KMeansSegmenter(5, seed=0).fit(data)
        routes = segmenter.route_data_batch(data)
        assert {route[0] for route in routes} <= set(range(5))

    def test_unfitted_routing_rejected(self, data):
        with pytest.raises(SegmenterNotFittedError):
            KMeansSegmenter(4).route_data_batch(data)

    def test_fit_requires_enough_points(self):
        with pytest.raises(ValueError, match="training points"):
            KMeansSegmenter(10).fit(np.ones((5, 3), dtype=np.float32))

    def test_registered(self):
        from repro.segmenters.base import registered_kinds

        assert "kmeans" in registered_kinds()


class TestRouting:
    def test_data_routes_to_nearest_cell(self, fitted, data):
        routes = fitted.route_data_batch(data)
        dists = np.linalg.norm(
            data[:, np.newaxis, :] - fitted.centers[np.newaxis], axis=2
        )
        nearest = np.argmin(dists, axis=1)
        for route, cell in zip(routes, nearest):
            assert route[0] == cell

    def test_virtual_spill_fans_out_boundary_queries(self, fitted, data):
        fanout = np.array(
            [len(route) for route in fitted.route_query_batch(data)]
        )
        assert fanout.max() <= 2
        # On clustered data, a minority of queries are near a boundary.
        assert 0.0 < (fanout == 2).mean() < 0.6

    def test_cluster_members_stay_together(self, data):
        """Points generated from the same Gaussian should mostly share a
        segment -- the locality property segmentation exists for."""
        segmenter = KMeansSegmenter(6, seed=1).fit(data)
        routes = segmenter.route_data_batch(data)
        base = data[:200]
        nudged = base + np.random.default_rng(0).normal(
            scale=1e-4, size=base.shape
        ).astype(np.float32)
        nudged_routes = segmenter.route_data_batch(nudged)
        same = sum(
            a[0] == b[0] for a, b in zip(routes[:200], nudged_routes)
        )
        assert same / 200 > 0.97

    def test_physical_spill_duplicates_data(self, data):
        physical = KMeansSegmenter(
            6, spill_threshold=0.6, spill_mode="physical", seed=0
        ).fit(data)
        total = sum(len(route) for route in physical.route_data_batch(data))
        assert total > len(data)
        # And its queries probe exactly one segment.
        query_routes = physical.route_query_batch(data[:50])
        assert all(len(route) == 1 for route in query_routes)

    def test_threshold_one_disables_spill(self, data):
        segmenter = KMeansSegmenter(6, spill_threshold=1.0, seed=0).fit(data)
        assert all(
            len(route) == 1 for route in segmenter.route_query_batch(data)
        )

    def test_single_segment(self, data):
        segmenter = KMeansSegmenter(1, seed=0).fit(data)
        assert segmenter.route_data_batch(data[:5]) == [(0,)] * 5
        assert segmenter.route_query_batch(data[:5]) == [(0,)] * 5


class TestSerialization:
    def test_roundtrip(self, fitted, data):
        restored = segmenter_from_dict(fitted.to_dict())
        assert isinstance(restored, KMeansSegmenter)
        assert restored.route_data_batch(data[:100]) == (
            fitted.route_data_batch(data[:100])
        )
        assert restored.route_query_batch(data[:100]) == (
            fitted.route_query_batch(data[:100])
        )

    def test_unfitted_roundtrip(self):
        restored = segmenter_from_dict(KMeansSegmenter(3).to_dict())
        assert not restored.is_fitted


class TestEndToEnd:
    def test_high_recall_in_shard_index(self, data):
        """KMeansSegmenter plugs into ShardIndex like any other."""
        from repro.core.index import ShardIndex
        from repro.hnsw.index import HnswIndex
        from repro.offline.brute_force import exact_top_k
        from tests.conftest import FAST_HNSW

        segmenter = KMeansSegmenter(4, spill_threshold=0.9, seed=2).fit(data)
        routes = segmenter.route_data_batch(data)
        segments = []
        for segment_id in range(4):
            rows = np.asarray(
                [i for i, route in enumerate(routes) if segment_id in route]
            )
            index = HnswIndex(dim=data.shape[1], params=FAST_HNSW)
            if rows.size:
                index.add(data[rows], ids=rows)
            segments.append(index)
        shard = ShardIndex(0, segments, segmenter)
        queries = data[:40]
        truth, _ = exact_top_k(data, queries, 5)
        hits = 0
        for row, query in enumerate(queries):
            results = shard.search(query, 5, ef=48)
            found = {item for _, item in results}
            hits += len(found & set(truth[row].tolist()))
        assert hits / (len(queries) * 5) >= 0.85
