"""Wire-protocol tests: framing round trips and hostile-input fuzzing.

The contract under test: a well-formed frame round-trips bit-identically
(zero-copy both ways), and *any* malformed input -- truncated at every
possible boundary, oversized, wrong magic/version, garbled header,
lying array metadata -- raises :class:`~repro.errors.ProtocolError`
instead of hanging, crashing inside numpy, or decoding garbage.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    RemoteCallError,
)
from repro.net.protocol import (
    MAGIC,
    SUPPORTED_VERSIONS,
    MAX_HEADER_BYTES,
    MsgType,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_frame,
    frame_to_bytes,
    parse_prefix,
    raise_if_error,
    recv_frame,
    send_frame,
)


def search_frame(num_queries: int = 3, dim: int = 8) -> bytes:
    queries = np.arange(num_queries * dim, dtype=np.float32).reshape(
        num_queries, dim
    )
    return frame_to_bytes(
        MsgType.SEARCH, {"index": "main", "top_k": 5, "ef": 48}, (queries,)
    )


class TestRoundTrip:
    def test_header_only_frame(self):
        data = frame_to_bytes(MsgType.PING, {"shard_id": 7})
        msg_type, header, arrays = decode_frame(data)
        assert msg_type == MsgType.PING
        assert header == {"shard_id": 7}
        assert arrays == []

    def test_arrays_round_trip_bit_identically(self):
        queries = np.random.default_rng(0).normal(size=(4, 16))
        ids = np.arange(20, dtype=np.int64).reshape(4, 5)
        dists = np.linspace(0, 1, 20).reshape(4, 5)
        data = frame_to_bytes(
            MsgType.RESULT,
            {"index": "a"},
            (queries.astype(np.float32), ids, dists),
        )
        _, header, arrays = decode_frame(data)
        np.testing.assert_array_equal(arrays[0], queries.astype(np.float32))
        np.testing.assert_array_equal(arrays[1], ids)
        np.testing.assert_array_equal(arrays[2], dists)
        assert arrays[0].dtype == np.float32
        assert arrays[1].dtype == np.int64
        assert arrays[2].dtype == np.float64

    def test_empty_and_zero_row_arrays(self):
        empty = np.empty((0, 16), dtype=np.float32)
        data = frame_to_bytes(MsgType.SEARCH, {"top_k": 1}, (empty,))
        _, _, arrays = decode_frame(data)
        assert arrays[0].shape == (0, 16)

    def test_non_contiguous_input_is_canonicalised(self):
        matrix = np.arange(64, dtype=np.float32).reshape(8, 8)
        strided = matrix[::2, ::2]  # non-contiguous view
        data = frame_to_bytes(MsgType.SEARCH, {}, (strided,))
        _, _, arrays = decode_frame(data)
        np.testing.assert_array_equal(arrays[0], strided)

    def test_unsupported_dtype_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="wire dtype"):
            frame_to_bytes(
                MsgType.SEARCH, {}, (np.zeros(3, dtype=np.float16),)
            )

    def test_error_frame_raises_remote_call_error(self):
        data = b"".join(
            bytes(part) for part in error_frame(KeyError("index 'x'"))
        )
        msg_type, header, _ = decode_frame(data)
        with pytest.raises(RemoteCallError, match="KeyError") as excinfo:
            raise_if_error(msg_type, header)
        assert excinfo.value.error_type == "KeyError"

    def test_non_error_frames_pass_raise_if_error(self):
        raise_if_error(MsgType.OK, {})  # must not raise


class TestHostileInput:
    def test_truncated_at_every_boundary(self):
        data = search_frame()
        # Every strict prefix of a valid frame must raise ProtocolError.
        for cut in range(len(data)):
            with pytest.raises(ProtocolError):
                decode_frame(data[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="trailing"):
            decode_frame(search_frame() + b"\x00")

    def test_bad_magic(self):
        data = bytearray(search_frame())
        data[0] = ord("X")
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(bytes(data))

    def test_version_mismatch(self):
        data = bytearray(search_frame())
        data[2] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(data))

    def test_unknown_message_type(self):
        data = bytearray(search_frame())
        data[3] = 250
        with pytest.raises(ProtocolError, match="message type"):
            decode_frame(bytes(data))

    def test_oversized_frame_rejected_by_prefix(self):
        prefix = struct.pack(
            ">2sBBIQ", MAGIC, PROTOCOL_VERSION, int(MsgType.SEARCH),
            16, 1 << 40,
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_prefix(prefix, max_frame=1 << 20)

    def test_oversized_header_rejected(self):
        prefix = struct.pack(
            ">2sBBIQ", MAGIC, PROTOCOL_VERSION, int(MsgType.SEARCH),
            MAX_HEADER_BYTES + 1, 0,
        )
        with pytest.raises(ProtocolError, match="header length"):
            parse_prefix(prefix)

    def test_garbled_header_json(self):
        header = b"{not json"
        prefix = struct.pack(
            ">2sBBIQ", MAGIC, PROTOCOL_VERSION, int(MsgType.PING),
            len(header), 0,
        )
        with pytest.raises(ProtocolError, match="unparseable"):
            decode_frame(prefix + header)

    def test_array_meta_overrunning_payload(self):
        # Header promises a (1000, 1000) float32 block; payload has 4 bytes.
        import json

        header = json.dumps(
            {"arrays": [{"dtype": "<f4", "shape": [1000, 1000]}]}
        ).encode()
        payload = b"\x00\x00\x00\x00"
        prefix = struct.pack(
            ">2sBBIQ", MAGIC, PROTOCOL_VERSION, int(MsgType.SEARCH),
            len(header), len(payload),
        )
        with pytest.raises(ProtocolError, match="overruns"):
            decode_frame(prefix + header + payload)

    def test_negative_and_bogus_shapes(self):
        import json

        for shape in ([-1, 4], ["x"], "nope", [[2]]):
            header = json.dumps(
                {"arrays": [{"dtype": "<f4", "shape": shape}]}
            ).encode()
            prefix = struct.pack(
                ">2sBBIQ", MAGIC, PROTOCOL_VERSION, int(MsgType.SEARCH),
                len(header), 0,
            )
            with pytest.raises(ProtocolError):
                decode_frame(prefix + header)

    def test_undeclared_payload_bytes_rejected(self):
        import json

        header = json.dumps({"arrays": []}).encode()
        payload = b"\xff" * 8
        prefix = struct.pack(
            ">2sBBIQ", MAGIC, PROTOCOL_VERSION, int(MsgType.PING),
            len(header), len(payload),
        )
        with pytest.raises(ProtocolError, match="trailing payload"):
            decode_frame(prefix + header + payload)

    def test_fuzz_random_mutations_never_escape_protocol_error(self):
        """Random single-byte corruptions: decode raises cleanly or
        returns a frame -- anything else (numpy errors, hangs, silent
        nonsense types) is a bug."""
        rng = np.random.default_rng(7)
        data = bytearray(search_frame())
        for _ in range(300):
            mutated = bytearray(data)
            pos = int(rng.integers(0, len(mutated)))
            mutated[pos] = int(rng.integers(0, 256))
            try:
                msg_type, header, arrays = decode_frame(bytes(mutated))
            except ProtocolError:
                continue
            assert isinstance(msg_type, MsgType)
            assert isinstance(header, dict)

    def test_fuzz_random_blobs(self):
        rng = np.random.default_rng(11)
        for _ in range(200):
            blob = bytes(
                rng.integers(0, 256, size=int(rng.integers(0, 64)), dtype=np.uint8)
            )
            with pytest.raises(ProtocolError):
                decode_frame(blob)


class TestSocketHelpers:
    def test_send_recv_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            queries = np.ones((2, 4), dtype=np.float32)
            sender = threading.Thread(
                target=send_frame,
                args=(left, MsgType.SEARCH, {"top_k": 3}, (queries,)),
            )
            sender.start()
            msg_type, header, arrays = recv_frame(right)
            sender.join(timeout=10)
            assert msg_type == MsgType.SEARCH
            assert header["top_k"] == 3
            np.testing.assert_array_equal(arrays[0], queries)
        finally:
            left.close()
            right.close()

    def test_peer_hangup_mid_frame_raises_connection_lost(self):
        left, right = socket.socketpair()
        try:
            data = search_frame()
            left.sendall(data[: len(data) // 2])
            left.close()
            with pytest.raises(ConnectionLostError, match="closed"):
                recv_frame(right)
        finally:
            right.close()

    def test_clean_hangup_before_frame(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionLostError):
                recv_frame(right)
        finally:
            right.close()


class TestProtocolVersions:
    """Protocol v2 added the optional trace/cost header fields; both
    versions must keep decoding (rolling upgrades mix peers)."""

    def test_v1_search_frame_still_decodes(self):
        queries = np.arange(24, dtype=np.float32).reshape(3, 8)
        header = {"index": "main", "top_k": 5, "ef": 48}
        data = b"".join(
            bytes(part)
            for part in encode_frame(
                MsgType.SEARCH, header, (queries,), version=1
            )
        )
        assert data[2] == 1
        msg_type, decoded, arrays = decode_frame(data)
        assert msg_type == MsgType.SEARCH
        assert decoded == header
        np.testing.assert_array_equal(arrays[0], queries)

    def test_v2_frame_with_trace_context_round_trips(self):
        queries = np.arange(16, dtype=np.float32).reshape(2, 8)
        header = {
            "index": "main",
            "top_k": 5,
            "trace": {"id": "t-0123abcd"},
            "cost": True,
        }
        data = b"".join(
            bytes(part)
            for part in encode_frame(MsgType.SEARCH, header, (queries,))
        )
        assert data[2] == PROTOCOL_VERSION
        _, decoded, arrays = decode_frame(data)
        assert decoded["trace"] == {"id": "t-0123abcd"}
        assert decoded["cost"] is True
        np.testing.assert_array_equal(arrays[0], queries)

    def test_trace_free_header_identical_across_versions(self):
        """A peer that never traces emits headers an old peer accepts:
        the trace fields are absent, not null-filled."""
        header = {"index": "main", "top_k": 5}
        frames = {
            version: b"".join(
                bytes(part)
                for part in encode_frame(MsgType.SEARCH, header, version=version)
            )
            for version in SUPPORTED_VERSIONS
        }
        for version, data in frames.items():
            _, decoded, _ = decode_frame(data)
            assert decoded == header, f"v{version} header drifted"
        # Only the version byte differs.
        assert frames[1][:2] == frames[2][:2]
        assert frames[1][3:] == frames[2][3:]

    def test_result_frame_with_cost_and_trace_round_trips(self):
        ids = np.arange(10, dtype=np.int64).reshape(2, 5)
        dists = np.linspace(0, 1, 10, dtype=np.float32).reshape(2, 5)
        header = {
            "cost": {"hops": 12, "distance_comps": 340},
            "trace": [
                {
                    "name": "decode",
                    "start_ms": 0.0,
                    "dur_ms": 0.1,
                    "annotations": {},
                    "children": [],
                }
            ],
        }
        data = frame_to_bytes(MsgType.RESULT, header, (ids, dists))
        _, decoded, arrays = decode_frame(data)
        assert decoded["cost"] == header["cost"]
        assert decoded["trace"][0]["name"] == "decode"
        np.testing.assert_array_equal(arrays[0], ids)
        np.testing.assert_array_equal(arrays[1], dists)

    def test_unsupported_encode_version_rejected(self):
        with pytest.raises(ProtocolError, match="version"):
            encode_frame(MsgType.PING, {}, version=PROTOCOL_VERSION + 1)


class TestProtocolV3:
    """Protocol v3 added the optional overload/deadline fields: a
    ``deadline_ms`` remaining budget on SEARCH and a ``retry_after_s``
    hint on ERROR frames.  Both are additive -- v2 peers keep working."""

    def test_search_deadline_ms_round_trips(self):
        queries = np.arange(16, dtype=np.float32).reshape(2, 8)
        header = {"index": "main", "top_k": 5, "deadline_ms": 87.5}
        data = b"".join(
            bytes(part)
            for part in encode_frame(MsgType.SEARCH, header, (queries,))
        )
        assert data[2] == PROTOCOL_VERSION
        _, decoded, arrays = decode_frame(data)
        assert decoded["deadline_ms"] == 87.5
        np.testing.assert_array_equal(arrays[0], queries)

    def test_v2_search_frame_still_decodes(self):
        """A v2 peer (no deadline field) keeps working mid-upgrade."""
        header = {"index": "main", "top_k": 5, "cost": True}
        data = b"".join(
            bytes(part)
            for part in encode_frame(MsgType.SEARCH, header, version=2)
        )
        assert data[2] == 2
        _, decoded, _ = decode_frame(data)
        assert decoded == header
        assert "deadline_ms" not in decoded

    def test_overloaded_error_frame_carries_retry_after(self):
        exc = OverloadedError("shard 3 at capacity", retry_after_s=0.25)
        data = b"".join(bytes(part) for part in error_frame(exc))
        msg_type, header, _ = decode_frame(data)
        assert header["error_type"] == "OverloadedError"
        assert header["retry_after_s"] == 0.25
        with pytest.raises(OverloadedError, match="capacity") as excinfo:
            raise_if_error(msg_type, header)
        assert excinfo.value.retry_after_s == 0.25

    def test_overloaded_without_hint_round_trips_as_none(self):
        exc = OverloadedError("at capacity")
        data = b"".join(bytes(part) for part in error_frame(exc))
        msg_type, header, _ = decode_frame(data)
        assert "retry_after_s" not in header
        with pytest.raises(OverloadedError) as excinfo:
            raise_if_error(msg_type, header)
        assert excinfo.value.retry_after_s is None

    def test_deadline_exceeded_error_maps_to_typed_exception(self):
        exc = DeadlineExceededError("budget spent on arrival")
        data = b"".join(bytes(part) for part in error_frame(exc))
        msg_type, header, _ = decode_frame(data)
        with pytest.raises(DeadlineExceededError, match="budget"):
            raise_if_error(msg_type, header)

    def test_plain_error_frame_still_maps_to_remote_call_error(self):
        """ERROR frames without the v3 hint (v1 peers, or any remote
        exception) still raise the generic RemoteCallError."""
        data = b"".join(
            bytes(part) for part in error_frame(ValueError("bad k"))
        )
        msg_type, header, _ = decode_frame(data)
        assert "retry_after_s" not in header
        with pytest.raises(RemoteCallError, match="ValueError"):
            raise_if_error(msg_type, header)
