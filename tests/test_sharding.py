"""Tests for stable hash sharding (Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharding.sharder import HashSharder, stable_hash


class TestStableHash:
    def test_known_stability(self):
        """Hashes are pinned: changing the function breaks stored indices."""
        assert stable_hash(0) == stable_hash(0)
        assert stable_hash("0") == stable_hash(0)  # int/str key equivalence

    def test_fits_in_int64(self):
        for key in (0, 1, 12345, "user-9f3a"):
            value = stable_hash(key)
            assert 0 <= value < 2**63

    def test_distinct_keys_rarely_collide(self):
        values = {stable_hash(key) for key in range(10_000)}
        assert len(values) == 10_000


class TestHashSharder:
    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            HashSharder(0)

    def test_shard_range(self):
        sharder = HashSharder(7)
        for key in range(100):
            assert 0 <= sharder.shard_of(key) < 7

    def test_batch_matches_scalar(self):
        sharder = HashSharder(5)
        keys = list(range(200))
        batch = sharder.shard_of_batch(keys)
        for key, shard in zip(keys, batch):
            assert sharder.shard_of(key) == shard

    def test_uniformity(self):
        sharder = HashSharder(8)
        counts = np.bincount(
            sharder.shard_of_batch(range(16_000)), minlength=8
        )
        expected = 16_000 / 8
        assert (np.abs(counts - expected) < 5 * np.sqrt(expected)).all()

    def test_partition_covers_everything_once(self):
        sharder = HashSharder(4)
        keys = list(range(500))
        partition = sharder.partition(keys)
        all_rows = np.concatenate(partition)
        assert sorted(all_rows.tolist()) == list(range(500))

    def test_partition_rows_agree_with_shard_of(self):
        sharder = HashSharder(3)
        keys = [f"member-{i}" for i in range(100)]
        partition = sharder.partition(keys)
        for shard, rows in enumerate(partition):
            for row in rows:
                assert sharder.shard_of(keys[row]) == shard

    def test_single_shard_takes_all(self):
        sharder = HashSharder(1)
        assert (sharder.shard_of_batch(range(50)) == 0).all()

    @given(st.integers(0, 2**31), st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_assignment_process_stable(self, key, num_shards):
        """Same key, same shard -- across sharder instances."""
        assert HashSharder(num_shards).shard_of(key) == (
            HashSharder(num_shards).shard_of(key)
        )
