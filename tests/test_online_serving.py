"""Tests for the online tier: searchers, broker, service (Fig 9)."""

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.errors import MetadataMismatchError
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode
from repro.online.service import OnlineService
from repro.storage.manifest import save_lanns_index
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=2,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=6,
    )


@pytest.fixture(scope="module")
def index(clustered_data, config):
    return build_lanns_index(clustered_data, config=config)


@pytest.fixture
def service(index, fs):
    save_lanns_index(index, fs, "prod/main")
    service = OnlineService()
    service.deploy(fs, "prod/main")
    return service


class TestSearcherNode:
    def test_host_and_search(self, index, clustered_queries):
        searcher = SearcherNode(0)
        searcher.host("main", index.shards[0])
        results = searcher.search("main", clustered_queries[0], 5)
        assert len(results) <= 5

    def test_shard_id_must_match(self, index):
        searcher = SearcherNode(1)
        with pytest.raises(ValueError, match="cannot host"):
            searcher.host("main", index.shards[0])

    def test_double_host_rejected(self, index):
        searcher = SearcherNode(0)
        searcher.host("main", index.shards[0])
        with pytest.raises(ValueError, match="already hosts"):
            searcher.host("main", index.shards[0])

    def test_unknown_index_search(self, index, clustered_queries):
        searcher = SearcherNode(0)
        with pytest.raises(KeyError, match="does not host"):
            searcher.search("ghost", clustered_queries[0], 5)

    def test_ab_hosting_and_unhost(self, index, clustered_data):
        searcher = SearcherNode(0)
        searcher.host("model-a", index.shards[0])
        variant = build_lanns_index(
            clustered_data[:300],
            config=index.config.with_updates(seed=99),
        )
        searcher.host("model-b", variant.shards[0])
        assert searcher.hosted_indices == ["model-a", "model-b"]
        assert searcher.memory_vectors() == len(index.shards[0]) + len(
            variant.shards[0]
        )
        searcher.unhost("model-b")
        assert searcher.hosted_indices == ["model-a"]
        with pytest.raises(KeyError):
            searcher.unhost("model-b")


class TestBroker:
    def test_broker_matches_in_memory_index(self, index, clustered_queries, config):
        searchers = [SearcherNode(0), SearcherNode(1)]
        for shard_id, searcher in enumerate(searchers):
            searcher.host("main", index.shards[shard_id])
        broker = Broker(searchers, config)
        for query in clustered_queries[:10]:
            broker_ids, _ = broker.query("main", query, 10, ef=64)
            index_ids, _ = index.query(query, 10, ef=64)
            np.testing.assert_array_equal(broker_ids, index_ids)

    def test_parallel_fanout_same_results(self, index, clustered_queries, config):
        searchers = [SearcherNode(0), SearcherNode(1)]
        for shard_id, searcher in enumerate(searchers):
            searcher.host("main", index.shards[shard_id])
        sequential = Broker(searchers, config, parallel_fanout=False)
        parallel = Broker(searchers, config, parallel_fanout=True)
        for query in clustered_queries[:5]:
            np.testing.assert_array_equal(
                sequential.query("main", query, 8)[0],
                parallel.query("main", query, 8)[0],
            )

    def test_searcher_order_enforced(self, index, config):
        searchers = [SearcherNode(1), SearcherNode(0)]
        with pytest.raises(ValueError, match="shard order"):
            Broker(searchers, config)

    def test_searcher_count_enforced(self, index, config):
        with pytest.raises(ValueError, match="searchers"):
            Broker([SearcherNode(0)], config)

    def test_budget_passed_to_shards(self, index, config):
        searchers = [SearcherNode(0), SearcherNode(1)]
        for shard_id, searcher in enumerate(searchers):
            searcher.host("main", index.shards[shard_id])
        broker = Broker(searchers, config)
        assert broker.per_shard_budget(100) < 100
        off = Broker(
            searchers, config.with_updates(use_per_shard_topk=False)
        )
        assert off.per_shard_budget(100) == 100

    def test_query_batch_padding(self, index, clustered_queries, config):
        searchers = [SearcherNode(0), SearcherNode(1)]
        for shard_id, searcher in enumerate(searchers):
            searcher.host("main", index.shards[shard_id])
        broker = Broker(searchers, config)
        ids, dists = broker.query_batch("main", clustered_queries[:3], 5)
        assert ids.shape == (3, 5)


class TestBudgetAndPaddingDegenerateCases:
    """perShardTopK and padding sentinels in the shapes micro-batch
    coalescing can produce: top_k beyond the corpus, one shard, and
    empty batches."""

    def make_broker(self, index, config, **kwargs):
        searchers = [SearcherNode(0), SearcherNode(1)]
        for shard_id, searcher in enumerate(searchers):
            searcher.host("main", index.shards[shard_id])
        return Broker(searchers, config, **kwargs)

    def test_single_shard_budget_is_exactly_topk(self, clustered_data):
        config = LannsConfig(
            num_shards=1, hnsw=FAST_HNSW, segmenter_sample_size=600
        )
        index = build_lanns_index(clustered_data[:200], config=config)
        searcher = SearcherNode(0)
        searcher.host("main", index.shards[0])
        broker = Broker([searcher], config)
        for top_k in (1, 7, 100, 1000):
            assert broker.per_shard_budget(top_k) == top_k

    def test_budget_bounds_for_many_shards(self, index, config):
        broker = self.make_broker(index, config)
        for top_k in (1, 2, 10, 100):
            budget = broker.per_shard_budget(top_k)
            assert 1 <= budget <= top_k
            assert budget * config.num_shards >= top_k

    def test_topk_beyond_corpus_pads_with_sentinels(
        self, index, clustered_queries, config
    ):
        broker = self.make_broker(index, config)
        top_k = len(index) + 17  # more than every stored vector
        ids, dists = broker.search_batch(
            "main", clustered_queries[:4], top_k, ef=48
        )
        assert ids.shape == (4, top_k)
        for row in range(4):
            valid = ids[row] >= 0
            count = int(valid.sum())
            assert 0 < count <= len(index)
            # Valid results first, then sentinel padding -- contiguously.
            assert valid[:count].all() and not valid[count:].any()
            assert np.isinf(dists[row][~valid]).all()
            assert (np.diff(dists[row][valid]) >= 0).all()
            row_ids = ids[row][valid]
            assert len(set(row_ids.tolist())) == count  # no duplicates
        # The single-query wrapper strips the same padding.
        single_ids, single_dists = broker.search(
            "main", clustered_queries[0], top_k, ef=48
        )
        assert (single_ids >= 0).all()
        assert np.isfinite(single_dists).all()
        np.testing.assert_array_equal(single_ids, ids[0][ids[0] >= 0])

    def test_topk_beyond_corpus_matches_sequential_under_microbatch(
        self, index, clustered_queries, config
    ):
        plain = self.make_broker(index, config)
        core = self.make_broker(
            index, config, max_batch=4, max_wait_ms=5.0, cache_size=16
        )
        top_k = len(index) + 5
        try:
            for query in clustered_queries[:3]:
                want = plain.search("main", query, top_k, ef=48)
                got_cold = core.search("main", query, top_k, ef=48)
                got_hot = core.search("main", query, top_k, ef=48)
                np.testing.assert_array_equal(got_cold[0], want[0])
                np.testing.assert_array_equal(got_hot[0], want[0])
                np.testing.assert_array_equal(got_hot[1], want[1])
        finally:
            plain.close()
            core.close()

    def test_empty_batch_returns_shaped_sentinels_without_fanout(
        self, index, config
    ):
        broker = self.make_broker(index, config)
        before = sum(s.requests_served for s in broker.searchers)
        ids, dists = broker.search_batch(
            "main", np.empty((0, 16), dtype=np.float32), 9
        )
        assert ids.shape == (0, 9) and dists.shape == (0, 9)
        assert ids.dtype == np.int64 and dists.dtype == np.float64
        after = sum(s.requests_served for s in broker.searchers)
        assert after == before  # no shard was bothered


class TestOnlineService:
    def test_deploy_and_query(self, service, index, clustered_queries):
        for query in clustered_queries[:10]:
            online_ids, _ = service.query(query, 10, ef=64)
            memory_ids, _ = index.query(query, 10, ef=64)
            np.testing.assert_array_equal(online_ids, memory_ids)

    def test_double_deploy_rejected(self, service, fs):
        with pytest.raises(ValueError, match="already deployed"):
            service.deploy(fs, "prod/main")

    def test_config_drift_guard(self, index, fs, config):
        save_lanns_index(index, fs, "prod/main")
        service = OnlineService()
        with pytest.raises(MetadataMismatchError):
            service.deploy(
                fs,
                "prod/main",
                expected_config=config.with_updates(topk_confidence=0.9),
            )

    def test_ab_deployment(self, service, fs, clustered_data, index, clustered_queries):
        variant = build_lanns_index(
            clustered_data,
            config=index.config.with_updates(seed=123),
        )
        save_lanns_index(variant, fs, "prod/variant")
        service.deploy(fs, "prod/variant", index_name="variant")
        assert service.deployed_indices == ["default", "variant"]
        ids_a, _ = service.query(clustered_queries[0], 5, index_name="default")
        ids_b, _ = service.query(clustered_queries[0], 5, index_name="variant")
        assert len(ids_a) == len(ids_b) == 5
        service.undeploy("variant")
        assert service.deployed_indices == ["default"]
        with pytest.raises(KeyError):
            service.query(clustered_queries[0], 5, index_name="variant")

    def test_unknown_index_query(self, service, clustered_queries):
        with pytest.raises(KeyError, match="not deployed"):
            service.query(clustered_queries[0], 5, index_name="nope")

    def test_measure_qps_stats(self, service, clustered_queries):
        stats = service.measure_qps(clustered_queries[:10], 5)
        assert stats["count"] == 10
        assert stats["qps"] > 0
        assert stats["p99_latency_ms"] >= stats["mean_latency_ms"] * 0.5

    def test_shard_count_mismatch_on_shared_fleet(self, service, fs, clustered_data):
        other = build_lanns_index(
            clustered_data[:200],
            config=LannsConfig(num_shards=1, hnsw=FAST_HNSW),
        )
        save_lanns_index(other, fs, "prod/other")
        with pytest.raises(ValueError, match="searchers"):
            service.deploy(fs, "prod/other", index_name="other")
