"""Tests for HnswParams validation and derived defaults."""

import math

import dataclasses

import pytest

from repro.hnsw.params import HnswParams


class TestValidation:
    def test_defaults_valid(self):
        params = HnswParams()
        assert params.M == 16
        assert params.ef_construction == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"M": 1},
            {"ef_construction": 0},
            {"ef_search": 0},
            {"max_m": 0},
            {"max_m0": -1},
            {"ml": 0.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HnswParams(**kwargs)

    def test_frozen(self):
        params = HnswParams()
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.M = 32


class TestDerivedDefaults:
    def test_max_m0_defaults_to_2m(self):
        assert HnswParams(M=10).effective_max_m0 == 20
        assert HnswParams(M=10, max_m0=15).effective_max_m0 == 15

    def test_max_m_defaults_to_m(self):
        assert HnswParams(M=10).effective_max_m == 10
        assert HnswParams(M=10, max_m=12).effective_max_m == 12

    def test_ml_defaults_to_inverse_log_m(self):
        assert HnswParams(M=16).effective_ml == pytest.approx(
            1.0 / math.log(16)
        )
        assert HnswParams(M=16, ml=0.5).effective_ml == 0.5


class TestSerialization:
    def test_roundtrip(self):
        params = HnswParams(
            M=12, ef_construction=77, ef_search=33, max_m0=30, ml=0.4, seed=9
        )
        assert HnswParams.from_dict(params.to_dict()) == params

    def test_from_dict_ignores_unknown_keys(self):
        payload = HnswParams().to_dict()
        payload["bogus"] = 1
        assert HnswParams.from_dict(payload) == HnswParams()
