"""Tests for exact search: blocked scan and the distributed job (Fig 8)."""

import numpy as np
import pytest

from repro.offline.brute_force import brute_force_job, exact_top_k
from repro.offline.recall import recall_at_k, recall_curve
from repro.sparklite.cluster import LocalCluster


def naive_top_k(data, queries, k):
    out = np.empty((len(queries), k), dtype=np.int64)
    for row, query in enumerate(queries):
        dists = np.linalg.norm(data - query, axis=1)
        out[row] = np.argsort(dists, kind="stable")[:k]
    return out


class TestExactTopK:
    def test_matches_naive(self, clustered_data, clustered_queries):
        ids, dists = exact_top_k(clustered_data, clustered_queries, 10)
        expected = naive_top_k(clustered_data, clustered_queries, 10)
        np.testing.assert_array_equal(ids, expected)
        assert np.all(np.diff(dists, axis=1) >= -1e-9)

    def test_blocking_invariance(self, clustered_data, clustered_queries):
        small_blocks, _ = exact_top_k(
            clustered_data, clustered_queries, 7, block_size=13
        )
        big_blocks, _ = exact_top_k(
            clustered_data, clustered_queries, 7, block_size=100_000
        )
        np.testing.assert_array_equal(small_blocks, big_blocks)

    def test_k_clamped_to_n(self, clustered_data, clustered_queries):
        ids, _ = exact_top_k(clustered_data[:5], clustered_queries[:3], 10)
        assert ids.shape == (3, 5)

    def test_cosine_metric(self, clustered_data, clustered_queries):
        ids, dists = exact_top_k(
            clustered_data, clustered_queries[:5], 5, metric="cosine"
        )
        assert (dists >= -1e-6).all() and (dists <= 2.0 + 1e-6).all()

    def test_invalid_k(self, clustered_data, clustered_queries):
        with pytest.raises(ValueError):
            exact_top_k(clustered_data, clustered_queries, 0)


class TestBruteForceJob:
    def test_equals_single_process_exact(self, clustered_data, clustered_queries):
        cluster = LocalCluster(num_executors=3)
        job_ids, job_dists = brute_force_job(
            cluster, clustered_data, clustered_queries, 10
        )
        exact_ids, exact_dists = exact_top_k(
            clustered_data, clustered_queries, 10
        )
        np.testing.assert_array_equal(job_ids, exact_ids)
        np.testing.assert_allclose(job_dists, exact_dists, rtol=1e-5)

    def test_external_ids_mapped(self, clustered_data, clustered_queries):
        cluster = LocalCluster(num_executors=2)
        ids = np.arange(len(clustered_data)) + 10_000
        job_ids, _ = brute_force_job(
            cluster, clustered_data, clustered_queries, 5, ids=ids
        )
        assert (job_ids >= 10_000).all()
        exact_ids, _ = exact_top_k(clustered_data, clustered_queries, 5)
        np.testing.assert_array_equal(job_ids - 10_000, exact_ids)

    def test_partition_count_irrelevant(self, clustered_data, clustered_queries):
        cluster = LocalCluster(num_executors=2)
        one, _ = brute_force_job(
            cluster, clustered_data, clustered_queries, 8, num_partitions=1
        )
        many, _ = brute_force_job(
            cluster, clustered_data, clustered_queries, 8, num_partitions=7
        )
        np.testing.assert_array_equal(one, many)

    def test_stages_recorded(self, clustered_data, clustered_queries):
        cluster = LocalCluster(num_executors=2)
        brute_force_job(cluster, clustered_data, clustered_queries[:5], 3)
        names = [stage.stage for stage in cluster.stages]
        assert "brute-force" in names
        assert "brute-force-merge" in names


class TestRecall:
    def test_perfect_recall(self):
        truth = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(truth, truth, 3) == 1.0

    def test_partial_recall(self):
        results = np.array([[1, 2, 9], [4, 8, 7]])
        truth = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(results, truth, 3) == pytest.approx(0.5)

    def test_order_within_topk_irrelevant(self):
        results = np.array([[3, 2, 1]])
        truth = np.array([[1, 2, 3]])
        assert recall_at_k(results, truth, 3) == 1.0

    def test_padding_ignored(self):
        results = np.array([[1, -1, -1]])
        truth = np.array([[1, 2, 3]])
        assert recall_at_k(results, truth, 3) == pytest.approx(1 / 3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            recall_at_k(np.array([1, 2]), np.array([[1, 2]]), 2)
        with pytest.raises(ValueError):
            recall_at_k(np.ones((2, 3)), np.ones((3, 3)), 2)
        with pytest.raises(ValueError):
            recall_at_k(np.ones((2, 3)), np.ones((2, 3)), 5)
        with pytest.raises(ValueError):
            recall_at_k(np.ones((2, 3)), np.ones((2, 3)), 0)

    def test_recall_curve(self):
        results = np.array([[1, 2, 9, 10]])
        truth = np.array([[1, 2, 3, 4]])
        curve = recall_curve(results, truth, [1, 2, 4])
        assert curve[1] == 1.0
        assert curve[2] == 1.0
        assert curve[4] == pytest.approx(0.5)
