"""Tests for the runtime concurrency sanitizer (``repro.analysis.sanitizer``).

Constructs a real A->B / B->A lock-order inversion across two threads
and asserts the sanitizer sees it, plus the blocking-call-under-lock
detector and the Condition/RLock plumbing the instrumented primitives
must keep intact.

The tests cooperate with a session-wide sanitizer (``REPRO_SANITIZE=1``
installs one via conftest): they only install/uninstall when nobody
else has, and they remove the violations they provoke so the session
teardown assertion stays clean.
"""

import threading
import time

import pytest

from repro.analysis import sanitizer


@pytest.fixture
def sanitized():
    """Yield the violation-list watermark; restore state afterwards."""
    was_installed = sanitizer._state.installed
    if not was_installed:
        sanitizer.install()
    watermark = len(sanitizer.violations())
    try:
        yield watermark
    finally:
        with sanitizer._state.guard:
            del sanitizer._state.violations[watermark:]
        if not was_installed:
            sanitizer.uninstall()


def _new_since(watermark: int):
    return sanitizer.violations()[watermark:]


def _run_thread(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestLockOrder:

    def test_inversion_across_two_threads_detected(self, sanitized):
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        # Sequential threads: the orders never actually deadlock, which
        # is exactly why only the order *graph* can catch the hazard.
        _run_thread(forward)
        _run_thread(backward)

        inversions = [
            v for v in _new_since(sanitized) if v.kind == "lock-order"
        ]
        assert inversions, "A->B then B->A must report an inversion"
        assert "inversion" in inversions[0].message

    def test_consistent_order_clean(self, sanitized):
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        def worker():
            with lock_a:
                with lock_b:
                    pass

        _run_thread(worker)
        _run_thread(worker)
        assert _new_since(sanitized) == []

    def test_transitive_cycle_detected(self, sanitized):
        # A->B, B->C, then C->A: no single pair inverts, only the cycle.
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        lock_c = threading.Lock()

        def ab():
            with lock_a:
                with lock_b:
                    pass

        def bc():
            with lock_b:
                with lock_c:
                    pass

        def ca():
            with lock_c:
                with lock_a:
                    pass

        _run_thread(ab)
        _run_thread(bc)
        _run_thread(ca)
        assert any(v.kind == "lock-order" for v in _new_since(sanitized))


class TestBlockingUnderLock:

    def test_sleep_under_lock_detected(self, sanitized):
        lock = threading.Lock()
        with lock:
            time.sleep(0.001)
        blocking = [
            v for v in _new_since(sanitized) if v.kind == "blocking-call"
        ]
        assert blocking
        assert "time.sleep" in blocking[0].message

    def test_sleep_without_lock_clean(self, sanitized):
        time.sleep(0.001)
        assert _new_since(sanitized) == []

    def test_future_result_under_lock_detected(self, sanitized):
        from concurrent.futures import Future

        future = Future()
        future.set_result(42)
        lock = threading.Lock()
        with lock:
            assert future.result() == 42
        assert any(
            v.kind == "blocking-call" and "Future.result" in v.message
            for v in _new_since(sanitized)
        )


class TestPrimitiveSemantics:
    """The instrumented primitives must behave exactly like the real ones."""

    def test_rlock_reentrant(self, sanitized):
        rlock = threading.RLock()
        with rlock:
            with rlock:
                pass
        assert _new_since(sanitized) == []

    def test_condition_wait_notify_roundtrip(self, sanitized):
        # Regression for the Condition-over-wrapped-RLock plumbing
        # (_is_owned/_release_save/_acquire_restore): a waiter must be
        # able to sleep on the condition and get woken.
        cond = threading.Condition()
        ready = []

        def waiter():
            with cond:
                while not ready:
                    assert cond.wait(timeout=5)

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            with cond:
                ready.append(True)
                cond.notify_all()
            if not thread.is_alive():
                break
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_lock_released_on_exception(self, sanitized):
        lock = threading.Lock()
        with pytest.raises(RuntimeError):
            with lock:
                raise RuntimeError("boom")
        # The held-stack must be unwound: a fresh acquire on another
        # lock records no pairing with the released one.
        assert not lock._inner.locked()
