"""Tests for the per-index Scorer: storage, growth, scoring kernels."""

import numpy as np
import pytest

from repro.distance.metrics import get_metric
from repro.distance.scorer import Scorer


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestStorage:
    def test_add_returns_rows(self, rng):
        scorer = Scorer("euclidean", 8)
        rows = scorer.add(rng.normal(size=(5, 8)).astype(np.float32))
        np.testing.assert_array_equal(rows, np.arange(5))
        rows = scorer.add(rng.normal(size=(3, 8)).astype(np.float32))
        np.testing.assert_array_equal(rows, np.arange(5, 8))
        assert len(scorer) == 8

    def test_single_vector_add(self, rng):
        scorer = Scorer("euclidean", 4)
        rows = scorer.add(rng.normal(size=4).astype(np.float32))
        assert rows.shape == (1,)

    def test_growth_preserves_data(self, rng):
        scorer = Scorer("euclidean", 4, capacity=2)
        first = rng.normal(size=(2, 4)).astype(np.float32)
        second = rng.normal(size=(50, 4)).astype(np.float32)
        scorer.add(first)
        scorer.add(second)
        np.testing.assert_array_equal(scorer.data[:2], first)
        np.testing.assert_array_equal(scorer.data[2:], second)

    def test_dimension_mismatch_rejected(self, rng):
        scorer = Scorer("euclidean", 4)
        with pytest.raises(ValueError, match="dimension"):
            scorer.add(rng.normal(size=(2, 5)).astype(np.float32))

    def test_bad_dim_rejected(self):
        with pytest.raises(ValueError):
            Scorer("euclidean", 0)


class TestScoring:
    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "inner_product"])
    def test_score_ids_matches_metric(self, rng, metric):
        data = rng.normal(size=(30, 12)).astype(np.float32)
        scorer = Scorer(metric, 12)
        scorer.add(data)
        query = scorer.prepare_query(rng.normal(size=12).astype(np.float32))
        ids = np.array([0, 5, 7, 29])
        reduced = scorer.score_ids(query, ids)
        true = scorer.to_true(reduced)
        # Compare against the metric applied to the *stored* vectors
        # (cosine stores normalised rows) to the *prepared* query.
        expected = get_metric(metric).batch(query, scorer.data[ids])
        np.testing.assert_allclose(true, expected, rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "inner_product"])
    def test_score_all_matches_score_ids(self, rng, metric):
        data = rng.normal(size=(25, 6)).astype(np.float32)
        scorer = Scorer(metric, 6)
        scorer.add(data)
        query = scorer.prepare_query(rng.normal(size=6).astype(np.float32))
        all_scores = scorer.score_all(query)
        ids = np.arange(25)
        np.testing.assert_allclose(
            all_scores, scorer.score_ids(query, ids), rtol=1e-5, atol=1e-5
        )

    def test_cosine_rows_are_normalised(self, rng):
        data = rng.normal(size=(10, 5)).astype(np.float32) * 13.0
        scorer = Scorer("cosine", 5)
        scorer.add(data)
        norms = np.linalg.norm(scorer.data, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-5)

    def test_cosine_zero_vector_stays_zero(self):
        scorer = Scorer("cosine", 3)
        scorer.add(np.zeros((1, 3), dtype=np.float32))
        np.testing.assert_array_equal(scorer.data[0], 0.0)

    def test_prepare_query_normalises_for_cosine(self, rng):
        scorer = Scorer("cosine", 4)
        query = scorer.prepare_query(
            np.array([3.0, 0.0, 0.0, 4.0], dtype=np.float32)
        )
        assert np.linalg.norm(query) == pytest.approx(1.0)

    def test_prepare_query_shape_check(self):
        scorer = Scorer("euclidean", 4)
        with pytest.raises(ValueError):
            scorer.prepare_query(np.ones(5, dtype=np.float32))

    def test_euclidean_scores_non_negative(self, rng):
        data = rng.normal(size=(40, 7)).astype(np.float32)
        scorer = Scorer("euclidean", 7)
        scorer.add(data)
        query = scorer.prepare_query(data[3])
        assert (scorer.score_all(query) >= 0.0).all()


class TestPairwiseIds:
    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "inner_product"])
    def test_matches_pointwise(self, rng, metric):
        data = rng.normal(size=(20, 9)).astype(np.float32)
        scorer = Scorer(metric, 9)
        scorer.add(data)
        ids = np.array([1, 4, 9, 15])
        cross = scorer.pairwise_ids(ids)
        for i, a in enumerate(ids):
            row = scorer.score_ids(scorer.data[a], ids)
            np.testing.assert_allclose(cross[i], row, rtol=1e-4, atol=1e-3)

    def test_diagonal_is_self_distance(self, rng):
        data = rng.normal(size=(10, 5)).astype(np.float32)
        scorer = Scorer("euclidean", 5)
        scorer.add(data)
        cross = scorer.pairwise_ids(np.arange(10))
        np.testing.assert_allclose(np.diag(cross), 0.0, atol=1e-3)
