"""Fleet launcher readiness: the deadline must hold against hung children.

The PR-3 launcher blocked on ``process.stdout.readline()``, so a child
that was alive but silent (wedged before printing ``SEARCHER-READY``)
stalled the launcher *past* ``ready_timeout_s`` -- the deadline was only
checked between lines.  These tests pin the fixed contract: readiness is
awaited with non-blocking pipe reads against the absolute deadline, a
hung or silent child raises :class:`TimeoutError` within the timeout
plus a small margin, and the child is killed AND reaped before the
raise.  Fake searcher scripts stand in for real servers so each case is
fast and deterministic.
"""

from __future__ import annotations

import subprocess
import sys
import time

import pytest

from repro.net import fleet as fleet_mod

#: Slack on top of ``ready_timeout_s``: generous enough for a loaded CI
#: box, tiny next to the 600 s the fake children would otherwise hang.
MARGIN_S = 5.0


def _script(code: str) -> list[str]:
    return [sys.executable, "-u", "-c", code]


@pytest.fixture
def spawned(monkeypatch):
    """Capture every Popen the launcher creates (to assert reaping)."""
    processes: list[subprocess.Popen] = []
    real_popen = subprocess.Popen

    def spy(*args, **kwargs):
        process = real_popen(*args, **kwargs)
        processes.append(process)
        return process

    monkeypatch.setattr(fleet_mod.subprocess, "Popen", spy)
    yield processes
    for process in processes:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


class TestReadinessTimeout:
    def test_hung_child_times_out_within_deadline_and_is_reaped(
        self, spawned
    ):
        """A child that prints *something* but never READY and then
        wedges must not stall the launcher past the deadline (the
        blocking-readline bug: output arrived, then the pipe went
        silent forever)."""
        begin = time.monotonic()
        with pytest.raises(TimeoutError, match="not ready within"):
            fleet_mod.launch_searcher(
                0,
                ready_timeout_s=1.0,
                command=_script(
                    "import time\n"
                    "print('booting up', flush=True)\n"
                    "time.sleep(600)\n"
                ),
            )
        elapsed = time.monotonic() - begin
        assert elapsed < 1.0 + MARGIN_S, (
            f"launcher stalled {elapsed:.1f}s past a 1.0s ready timeout"
        )
        (child,) = spawned
        assert child.poll() is not None, "timed-out child was not reaped"

    def test_silent_child_times_out_within_deadline_and_is_reaped(
        self, spawned
    ):
        """A child that prints nothing at all: the old code blocked on
        the very first readline."""
        begin = time.monotonic()
        with pytest.raises(TimeoutError, match="not ready within"):
            fleet_mod.launch_searcher(
                0,
                ready_timeout_s=1.0,
                command=_script("import time; time.sleep(600)"),
            )
        elapsed = time.monotonic() - begin
        assert elapsed < 1.0 + MARGIN_S
        (child,) = spawned
        assert child.poll() is not None

    def test_chatty_child_without_ready_line_still_times_out(self, spawned):
        """Output alone must not reset the deadline: a child logging in
        a loop (but never announcing readiness) times out too."""
        begin = time.monotonic()
        with pytest.raises(TimeoutError, match="not ready within"):
            fleet_mod.launch_searcher(
                0,
                ready_timeout_s=1.0,
                command=_script(
                    "import time\n"
                    "while True:\n"
                    "    print('still warming up', flush=True)\n"
                    "    time.sleep(0.05)\n"
                ),
            )
        assert time.monotonic() - begin < 1.0 + MARGIN_S
        (child,) = spawned
        assert child.poll() is not None


class TestReadinessOutcomes:
    def test_child_exit_before_ready_raises_runtime_error(self, spawned):
        with pytest.raises(RuntimeError, match="exited with code 3"):
            fleet_mod.launch_searcher(
                0,
                ready_timeout_s=30.0,
                command=_script("import sys; sys.exit(3)"),
            )
        (child,) = spawned
        assert child.poll() == 3

    def test_wrong_shard_announcement_rejected_and_reaped(self, spawned):
        with pytest.raises(RuntimeError, match="announced shard 7"):
            fleet_mod.launch_searcher(
                0,
                ready_timeout_s=30.0,
                command=_script(
                    "import time\n"
                    "print('SEARCHER-READY shard=7 port=1234', flush=True)\n"
                    "time.sleep(600)\n"
                ),
            )
        (child,) = spawned
        assert child.poll() is not None

    def test_launch_failure_names_log_holding_child_output(
        self, spawned, tmp_path
    ):
        """A failed launch points at the log file, and the log holds
        what the child printed before dying."""
        with pytest.raises(RuntimeError, match="searcher log: "):
            fleet_mod.launch_searcher(
                0,
                ready_timeout_s=30.0,
                log_dir=tmp_path,
                command=_script(
                    "import sys\n"
                    "print('boom: manifest missing', flush=True)\n"
                    "sys.exit(3)\n"
                ),
            )
        (log,) = list(tmp_path.glob("searcher-shard0-*.log"))
        assert b"boom: manifest missing" in log.read_bytes()

    def test_live_searcher_output_persisted_to_log(self, spawned, tmp_path):
        """Post-readiness output lands in ``SearcherProcess.log_path``."""
        searcher = fleet_mod.launch_searcher(
            2,
            ready_timeout_s=30.0,
            log_dir=tmp_path,
            command=_script(
                "import time\n"
                "print('SEARCHER-READY shard=2 port=43210', flush=True)\n"
                "print('serving traffic', flush=True)\n"
                "time.sleep(600)\n"
            ),
        )
        try:
            assert searcher.log_path is not None
            assert searcher.log_path.parent == tmp_path
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if b"serving traffic" in searcher.log_path.read_bytes():
                    break
                time.sleep(0.05)
            assert b"serving traffic" in searcher.log_path.read_bytes()
        finally:
            searcher.kill()

    def test_ready_line_after_noise_is_parsed(self, spawned):
        """Readiness may follow other output (warnings, banners) and the
        announced port is returned."""
        searcher = fleet_mod.launch_searcher(
            4,
            ready_timeout_s=30.0,
            command=_script(
                "import time\n"
                "print('some banner')\n"
                "print('SEARCHER-READY shard=4 port=43210', flush=True)\n"
                "time.sleep(600)\n"
            ),
        )
        try:
            assert searcher.shard_id == 4
            assert searcher.port == 43210
            assert searcher.alive()
        finally:
            searcher.kill()
        assert not searcher.alive()
