"""Tests for segmenter learning (subsample + fit, Figure 5)."""

import numpy as np
import pytest

from repro.segmenters.apd import ApdSegmenter
from repro.segmenters.learner import (
    learn_segmenter,
    make_segmenter,
    uniform_subsample,
)
from repro.segmenters.random_segmenter import RandomSegmenter
from repro.segmenters.rh import RandomHyperplaneSegmenter


class TestMakeSegmenter:
    def test_kinds(self):
        assert isinstance(make_segmenter("rs", 4), RandomSegmenter)
        assert isinstance(make_segmenter("rh", 4), RandomHyperplaneSegmenter)
        assert isinstance(make_segmenter("apd", 4), ApdSegmenter)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown segmenter"):
            make_segmenter("annoy", 4)

    def test_parameters_forwarded(self):
        segmenter = make_segmenter(
            "rh", 8, alpha=0.2, spill_mode="physical", seed=9
        )
        assert segmenter.alpha == 0.2
        assert segmenter.spill_mode == "physical"
        assert segmenter.seed == 9


class TestUniformSubsample:
    def test_returns_all_when_small(self, clustered_data):
        sample = uniform_subsample(clustered_data, 10_000, seed=0)
        assert sample.shape == clustered_data.shape

    def test_subsamples_without_replacement(self, clustered_data):
        sample = uniform_subsample(clustered_data, 100, seed=0)
        assert sample.shape == (100, clustered_data.shape[1])
        # Without replacement: all rows distinct.
        assert len(np.unique(sample, axis=0)) == 100

    def test_deterministic(self, clustered_data):
        a = uniform_subsample(clustered_data, 50, seed=1)
        b = uniform_subsample(clustered_data, 50, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_invalid_size(self, clustered_data):
        with pytest.raises(ValueError):
            uniform_subsample(clustered_data, 0)


class TestLearnSegmenter:
    def test_learns_fitted_segmenter(self, clustered_data):
        segmenter = learn_segmenter(clustered_data, "rh", 4, seed=0)
        assert segmenter.is_fitted
        assert segmenter.num_segments == 4

    def test_sample_size_controls_fit_data(self, clustered_data):
        # Learning on a subsample must still produce a working segmenter.
        segmenter = learn_segmenter(
            clustered_data, "apd", 4, sample_size=128, seed=0
        )
        routes = segmenter.route_data_batch(clustered_data)
        assert {route[0] for route in routes} == {0, 1, 2, 3}

    def test_rs_requires_no_learning(self, clustered_data):
        segmenter = learn_segmenter(clustered_data, "rs", 4, seed=0)
        assert isinstance(segmenter, RandomSegmenter)

    def test_spill_parameters_respected(self, clustered_data):
        segmenter = learn_segmenter(
            clustered_data, "rh", 2, alpha=0.05, spill_mode="physical", seed=0
        )
        assert segmenter.alpha == 0.05
        assert segmenter.spill_mode == "physical"
