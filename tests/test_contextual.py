"""Tests for context-based segmentation (the Section 8 extension)."""

import numpy as np
import pytest

from repro.core.contextual import build_contextual_index
from repro.offline.brute_force import exact_top_k
from repro.segmenters.base import segmenter_from_dict
from repro.segmenters.context import ContextSegmenter
from tests.conftest import FAST_HNSW, make_clustered

CONTEXTS = ["en", "de", "fr"]


@pytest.fixture(scope="module")
def labeled_corpus():
    rng = np.random.default_rng(31)
    data = make_clustered(600, 12, seed=31)
    labels = [CONTEXTS[i] for i in rng.integers(0, 3, size=600)]
    return data, labels


@pytest.fixture(scope="module")
def contextual(labeled_corpus):
    data, labels = labeled_corpus
    return build_contextual_index(
        data, labels, contexts=CONTEXTS, num_shards=2, hnsw=FAST_HNSW, seed=5
    )


class TestContextSegmenter:
    def test_segment_mapping(self):
        segmenter = ContextSegmenter(CONTEXTS)
        assert segmenter.num_segments == 3
        assert segmenter.segment_of("de") == 1

    def test_unknown_context_rejected_by_default(self):
        segmenter = ContextSegmenter(CONTEXTS)
        with pytest.raises(KeyError, match="unknown context"):
            segmenter.segment_of("jp")

    def test_default_context_fallback(self):
        segmenter = ContextSegmenter(CONTEXTS, default_context="en")
        assert segmenter.segment_of("jp") == 0

    def test_invalid_default_rejected(self):
        with pytest.raises(ValueError, match="default_context"):
            ContextSegmenter(CONTEXTS, default_context="jp")

    def test_duplicate_contexts_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ContextSegmenter(["en", "en"])

    def test_empty_contexts_rejected(self):
        with pytest.raises(ValueError):
            ContextSegmenter([])

    def test_route_labels(self):
        segmenter = ContextSegmenter(CONTEXTS)
        assert segmenter.route_labels(["fr", "en"]) == [(2,), (0,)]

    def test_route_contexts_sorted_unique(self):
        segmenter = ContextSegmenter(CONTEXTS)
        assert segmenter.route_contexts(["fr", "en", "fr"]) == (0, 2)

    def test_route_contexts_requires_one(self):
        with pytest.raises(ValueError):
            ContextSegmenter(CONTEXTS).route_contexts([])

    def test_vector_data_routing_rejected(self):
        segmenter = ContextSegmenter(CONTEXTS)
        with pytest.raises(TypeError, match="labels"):
            segmenter.route_data_batch(np.ones((2, 4), dtype=np.float32))

    def test_query_routing_defaults_to_all(self):
        segmenter = ContextSegmenter(CONTEXTS)
        routes = segmenter.route_query_batch(np.ones((2, 4), dtype=np.float32))
        assert routes == [(0, 1, 2), (0, 1, 2)]

    def test_serialization_roundtrip(self):
        segmenter = ContextSegmenter(CONTEXTS, default_context="de")
        restored = segmenter_from_dict(segmenter.to_dict())
        assert isinstance(restored, ContextSegmenter)
        assert restored.contexts == CONTEXTS
        assert restored.default_context == "de"


class TestContextualIndex:
    def test_every_vector_stored_once(self, contextual, labeled_corpus):
        data, labels = labeled_corpus
        assert len(contextual) == len(data)
        sizes = contextual.context_sizes()
        for context in CONTEXTS:
            assert sizes[context] == labels.count(context)

    def test_scoped_query_returns_only_context_members(
        self, contextual, labeled_corpus
    ):
        data, labels = labeled_corpus
        en_rows = {i for i, label in enumerate(labels) if label == "en"}
        for row in (0, 10, 50):
            ids, _ = contextual.query(data[row], 5, contexts=["en"])
            assert set(ids.tolist()) <= en_rows

    def test_scoped_query_matches_scoped_brute_force(
        self, contextual, labeled_corpus
    ):
        data, labels = labeled_corpus
        de_rows = np.asarray(
            [i for i, label in enumerate(labels) if label == "de"]
        )
        queries = data[:20]
        truth_local, _ = exact_top_k(data[de_rows], queries, 5)
        truth = de_rows[truth_local]
        hits = 0
        for row, query in enumerate(queries):
            ids, _ = contextual.query(query, 5, contexts=["de"], ef=64)
            hits += len(set(ids.tolist()) & set(truth[row].tolist()))
        assert hits / (len(queries) * 5) >= 0.9

    def test_multi_context_query(self, contextual, labeled_corpus):
        data, labels = labeled_corpus
        allowed = {
            i for i, label in enumerate(labels) if label in ("en", "fr")
        }
        ids, _ = contextual.query(data[0], 10, contexts=["en", "fr"])
        assert set(ids.tolist()) <= allowed

    def test_unscoped_query_equals_all_contexts(self, contextual, labeled_corpus):
        data, _ = labeled_corpus
        all_ids, _ = contextual.query(data[3], 10, ef=64)
        explicit_ids, _ = contextual.query(
            data[3], 10, contexts=CONTEXTS, ef=64
        )
        np.testing.assert_array_equal(all_ids, explicit_ids)

    def test_unknown_context_query_rejected(self, contextual, labeled_corpus):
        data, _ = labeled_corpus
        with pytest.raises(KeyError):
            contextual.query(data[0], 5, contexts=["jp"])

    def test_invalid_topk(self, contextual, labeled_corpus):
        data, _ = labeled_corpus
        with pytest.raises(ValueError):
            contextual.query(data[0], 0, contexts=["en"])

    def test_contexts_inferred_from_labels(self, labeled_corpus):
        data, labels = labeled_corpus
        index = build_contextual_index(
            data[:100], labels[:100], hnsw=FAST_HNSW
        )
        assert index.contexts == sorted(set(labels[:100]))

    def test_label_count_validated(self, labeled_corpus):
        data, labels = labeled_corpus
        with pytest.raises(ValueError, match="labels"):
            build_contextual_index(data, labels[:10], hnsw=FAST_HNSW)

    def test_custom_ids(self, labeled_corpus):
        data, labels = labeled_corpus
        ids = np.arange(len(data)) + 70_000
        index = build_contextual_index(
            data, labels, contexts=CONTEXTS, ids=ids, hnsw=FAST_HNSW
        )
        found, _ = index.query(data[0], 1, contexts=[labels[0]])
        assert found[0] == 70_000
