"""Tests for the bounded top-k heap and the top-k merge primitive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.heap import TopKHeap, merge_top_k


class TestTopKHeap:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            TopKHeap(0)
        with pytest.raises(ValueError):
            TopKHeap(-3)

    def test_keeps_k_smallest(self):
        heap = TopKHeap(3)
        for dist, item in [(5.0, 1), (1.0, 2), (3.0, 3), (2.0, 4), (4.0, 5)]:
            heap.push(dist, item)
        assert heap.items() == [(1.0, 2), (2.0, 4), (3.0, 3)]

    def test_push_reports_retention(self):
        heap = TopKHeap(2)
        assert heap.push(5.0, 1) is True
        assert heap.push(4.0, 2) is True
        assert heap.push(10.0, 3) is False
        assert heap.push(1.0, 4) is True

    def test_worst_distance_is_inf_until_full(self):
        heap = TopKHeap(2)
        assert heap.worst_distance == float("inf")
        heap.push(1.0, 1)
        assert heap.worst_distance == float("inf")
        heap.push(2.0, 2)
        assert heap.worst_distance == 2.0

    def test_tie_break_prefers_smaller_id(self):
        heap = TopKHeap(1)
        heap.push(1.0, 7)
        heap.push(1.0, 3)
        assert heap.items() == [(1.0, 3)]
        heap.push(1.0, 9)
        assert heap.items() == [(1.0, 3)]

    def test_len_and_bool(self):
        heap = TopKHeap(3)
        assert not heap
        assert len(heap) == 0
        heap.push(1.0, 1)
        assert heap
        assert len(heap) == 1

    def test_extend_and_iter(self):
        heap = TopKHeap(2)
        heap.extend([(3.0, 1), (1.0, 2), (2.0, 3)])
        assert list(heap) == [(1.0, 2), (2.0, 3)]

    def test_ids_sorted_by_distance(self):
        heap = TopKHeap(3)
        heap.extend([(3.0, 1), (1.0, 2), (2.0, 3)])
        assert heap.ids() == [2, 3, 1]

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1e6, allow_nan=False), st.integers(0, 10_000)
            ),
            max_size=200,
        ),
        st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_sorted_prefix(self, pairs, k):
        """The heap's content always equals the sorted prefix of the input."""
        heap = TopKHeap(k)
        heap.extend(pairs)
        expected = sorted(pairs)[:k]
        # The heap dedupes nothing; equal (dist, id) pairs may collapse in
        # sorting order only, so compare multiset-as-sorted-list.
        assert heap.items() == expected


class TestMergeTopK:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            merge_top_k([[(1.0, 1)]], 0)

    def test_merges_across_lists(self):
        result = merge_top_k(
            [[(1.0, 1), (4.0, 4)], [(2.0, 2)], [(3.0, 3)]], 3
        )
        assert result == [(1.0, 1), (2.0, 2), (3.0, 3)]

    def test_dedupes_keeping_best_distance(self):
        result = merge_top_k([[(3.0, 7)], [(1.0, 7)], [(2.0, 8)]], 2)
        assert result == [(1.0, 7), (2.0, 8)]

    def test_no_dedupe_keeps_duplicates(self):
        result = merge_top_k(
            [[(3.0, 7)], [(1.0, 7)]], 2, dedupe=False
        )
        assert result == [(1.0, 7), (3.0, 7)]

    def test_empty_input(self):
        assert merge_top_k([], 5) == []
        assert merge_top_k([[], []], 5) == []

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.floats(0, 100, allow_nan=False),
                    st.integers(0, 50),
                ),
                max_size=30,
            ),
            max_size=5,
        ),
        st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_global_topk_of_best_per_id(self, lists, k):
        """Merging partitioned results reproduces the global top-k."""
        best = {}
        for candidates in lists:
            for dist, item in candidates:
                if item not in best or dist < best[item]:
                    best[item] = dist
        expected = sorted((dist, item) for item, dist in best.items())[:k]
        assert merge_top_k(lists, k) == expected

    @given(
        st.lists(
            st.tuples(st.floats(0, 100, allow_nan=False), st.integers(0, 1000)),
            max_size=60,
            unique_by=lambda pair: pair[1],
        ),
        st.integers(1, 8),
        st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_partitioning_invariance(self, pairs, k, num_parts):
        """Splitting items across lists must not change the merged top-k.

        This is the core correctness property behind LANNS sharding: a
        query's answer cannot depend on how records were partitioned.
        """
        parts = [pairs[i::num_parts] for i in range(num_parts)]
        assert merge_top_k(parts, k) == merge_top_k([pairs], k)
