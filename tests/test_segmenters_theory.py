"""Tests for the Definition 1 potentials and Theorem 1 bounds."""

import numpy as np
import pytest

from repro.segmenters.theory import (
    failure_bound_1nn,
    failure_bound_knn,
    figure4_failure_probability,
    potential_phi,
    potential_phi_k,
)
from tests.conftest import make_clustered


@pytest.fixture(scope="module")
def data():
    return make_clustered(400, 8, seed=11)


class TestPotentialPhi:
    def test_well_separated_neighbor_gives_small_potential(self):
        """One point next to the query, the rest far away: easy instance."""
        data = np.concatenate(
            [
                np.array([[0.1, 0.0]]),
                np.ones((50, 2)) * 100.0
                + np.random.default_rng(0).normal(size=(50, 2)),
            ]
        ).astype(np.float32)
        query = np.zeros(2, dtype=np.float32)
        easy = potential_phi(query, data, m=20)
        assert easy < 0.05

    def test_uniform_shell_gives_large_potential(self):
        """All points equidistant: the hardest instance, ratios ~ 1."""
        rng = np.random.default_rng(1)
        directions = rng.normal(size=(50, 4))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        data = (directions * 10.0).astype(np.float32)
        query = np.zeros(4, dtype=np.float32)
        hard = potential_phi(query, data, m=50)
        assert hard > 0.8

    def test_potential_decreases_for_easier_queries(self, data):
        query_near = data[0]  # exact data point: distance 0 to its NN
        assert potential_phi(query_near, data, m=50) == 0.0

    def test_m_validated(self, data):
        with pytest.raises(ValueError):
            potential_phi(data[0], data, m=1)


class TestPotentialPhiK:
    def test_reduces_to_reasonable_range(self, data):
        value = potential_phi_k(data[0] + 0.01, data, k=5, m=50)
        assert 0.0 <= value <= 1.0

    def test_k_and_m_validated(self, data):
        with pytest.raises(ValueError):
            potential_phi_k(data[0], data, k=0, m=10)
        with pytest.raises(ValueError):
            potential_phi_k(data[0], data, k=10, m=10)

    def test_harder_for_larger_k(self, data):
        """Needing more of the neighborhood can only raise the potential
        numerator (average of k nearest distances grows with k)."""
        query = data[0] + 0.05
        small_k = potential_phi_k(query, data, k=2, m=100)
        large_k = potential_phi_k(query, data, k=20, m=100)
        assert large_k >= small_k * 0.9  # allow slack from the 1/m factor


class TestTheorem1Bounds:
    def test_bound_is_probability(self, data):
        for alpha in (0.05, 0.15, 0.3):
            bound = failure_bound_1nn(data[0] + 0.01, data, alpha, depth=2)
            assert 0.0 <= bound <= 1.0

    def test_deeper_trees_have_larger_bound(self, data):
        query = data[0] + 0.01
        bounds = [
            failure_bound_1nn(query, data, 0.1, depth=depth)
            for depth in range(4)
        ]
        assert all(b1 >= b0 for b0, b1 in zip(bounds, bounds[1:]))

    def test_more_spill_reduces_bound(self, data):
        """Theorem 1 scales as 1/alpha: wider spill = safer routing."""
        query = data[0] + 0.01
        tight = failure_bound_1nn(query, data, 0.05, depth=2)
        loose = failure_bound_1nn(query, data, 0.3, depth=2)
        assert loose <= tight

    def test_easy_instance_has_small_bound(self):
        data = np.concatenate(
            [
                np.array([[0.01, 0.0]]),
                np.random.default_rng(2).normal(size=(500, 2)) * 3 + 50,
            ]
        ).astype(np.float32)
        bound = failure_bound_1nn(
            np.zeros(2, dtype=np.float32), data, 0.15, depth=2
        )
        assert bound < 0.2

    def test_knn_bound_validates_and_bounds(self, data):
        bound = failure_bound_knn(data[0] + 0.01, data, k=5, alpha=0.15, depth=2)
        assert 0.0 <= bound <= 1.0
        with pytest.raises(ValueError):
            failure_bound_knn(data[0], data, k=5, alpha=0.0, depth=1)

    def test_alpha_validated(self, data):
        with pytest.raises(ValueError):
            failure_bound_1nn(data[0], data, 0.5, depth=1)
        with pytest.raises(ValueError):
            failure_bound_1nn(data[0], data, 0.1, depth=-1)


class TestFigure4Curve:
    def test_monotone_increasing_in_levels(self):
        curve = figure4_failure_probability(10_000, 0.15, 8)
        assert curve.shape == (8,)
        assert (np.diff(curve) > 0).all()

    def test_matches_closed_form(self):
        n, alpha = 10_000, 0.15
        curve = figure4_failure_probability(n, alpha, 3)
        expected_l1 = 1.0 / (2 * (0.5 + alpha) * n)
        assert curve[0] == pytest.approx(expected_l1)
        expected_l2 = expected_l1 + 1.0 / (2 * (0.5 + alpha) ** 2 * n)
        assert curve[1] == pytest.approx(expected_l2)

    def test_larger_alpha_lowers_curve(self):
        low = figure4_failure_probability(10_000, 0.05, 6)
        high = figure4_failure_probability(10_000, 0.30, 6)
        assert (high < low).all()

    def test_larger_n_lowers_curve(self):
        small = figure4_failure_probability(1_000, 0.15, 6)
        large = figure4_failure_probability(100_000, 0.15, 6)
        assert (large < small).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            figure4_failure_probability(0, 0.15, 3)
        with pytest.raises(ValueError):
            figure4_failure_probability(100, 0.0, 3)
        with pytest.raises(ValueError):
            figure4_failure_probability(100, 0.15, 0)
