"""Replica-group tests: load-aware pick, failover, hedging, restarts.

The ledger unit tests drive :class:`ReplicaGroup` directly; the serving
tests run real in-thread asyncio searcher servers so a connection refused
is a refused connection and a straggler is an actually-slow socket.
Pinned here:

- ``pick`` is load-aware (least in-flight, EWMA tie-break), deprioritizes
  failing replicas, and skips draining replicas while a sibling exists;
- an unreachable replica fails over to its sibling transparently (the
  ``failovers`` counter counts actual takeovers, not dead ends);
- hedged retries land on a *different* replica of the same group, so a
  slow replica is covered by its fast sibling;
- a rolling restart of a replica group drops zero queries under the
  strict ``fail`` policy while traffic keeps flowing.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.errors import TransportError
from repro.net.fleet import parse_fleet_spec
from repro.net.server import SearcherServer
from repro.net.transport import AsyncRemoteSearcherTransport
from repro.online.broker import Broker
from repro.online.replicas import ReplicaGroup
from repro.online.searcher import SearcherNode
from repro.online.service import OnlineService
from repro.online.types import SearchRequest
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index
from tests.conftest import FAST_HNSW, make_clustered

NUM_SHARDS = 2
INDEX_PATH = "prod/replicated"
#: An address nothing listens on (port 1 is reserved, never bound here).
DEAD_ADDRESS = "127.0.0.1:1"


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=NUM_SHARDS,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=400,
        seed=13,
    )


@pytest.fixture(scope="module")
def corpus():
    return make_clustered(500, 16, seed=41)


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(42)
    rows = rng.integers(0, corpus.shape[0], size=16)
    noise = rng.normal(scale=0.2, size=(16, corpus.shape[1]))
    return (corpus[rows] + noise).astype(np.float32)


@pytest.fixture(scope="module")
def shared_fs(tmp_path_factory):
    return LocalHdfs(tmp_path_factory.mktemp("replica-hdfs"))


@pytest.fixture(scope="module")
def index(corpus, config, shared_fs):
    built = build_lanns_index(corpus, config=config)
    save_lanns_index(built, shared_fs, INDEX_PATH)
    return built


def start_server(shared_fs, shard_id: int, *, port: int = 0, **kwargs):
    return SearcherServer(
        SearcherNode(shard_id),
        port=port,
        root=str(shared_fs.root),
        **kwargs,
    ).start_in_thread()


def connect(address: str, shard_id: int) -> AsyncRemoteSearcherTransport:
    return AsyncRemoteSearcherTransport(
        address, shard_id, timeout_s=10.0, retries=0, pool_size=1
    )


class TestReplicaGroupLedger:
    def make_group(self, size: int = 3) -> ReplicaGroup:
        return ReplicaGroup(0, [SearcherNode(0) for _ in range(size)])

    def test_pick_prefers_least_in_flight(self):
        group = self.make_group()
        # Equalise the EWMA so in-flight is the only live signal.
        for replica in group.replicas:
            group.begin(replica)
            group.finish(replica, 0.01)
        busy = group.replicas[0]
        group.begin(busy)
        picked = group.pick()
        assert picked.replica_id != 0
        group.finish(busy, 0.01)
        # Slot released: replica 0 is eligible again (and wins the
        # id tie-break among idle replicas with equal EWMA).
        assert group.pick().replica_id == 0

    def test_pick_breaks_ties_by_ewma_latency(self):
        group = self.make_group(2)
        slow, fast = group.replicas
        for _ in range(4):
            group.begin(slow)
            group.finish(slow, 0.5)
            group.begin(fast)
            group.finish(fast, 0.001)
        assert group.pick().replica_id == fast.replica_id

    def test_cold_replica_not_preferred_on_ties(self):
        group = self.make_group(2)
        measured = group.replicas[0]
        group.begin(measured)
        group.finish(measured, 0.05)
        # The cold sibling (no EWMA sample yet) ranks at the pool
        # median, so the measured replica keeps winning the id
        # tie-break instead of the cold one jumping the queue with an
        # implicit 0.0 latency.
        assert group.pick().replica_id == 0

    def test_cold_replica_still_wins_on_load(self):
        group = self.make_group(2)
        measured = group.replicas[0]
        group.begin(measured)
        group.finish(measured, 0.05)
        group.begin(measured)  # one request in flight on the measured one
        assert group.pick().replica_id == 1

    def test_restored_replica_not_preferred_over_measured_sibling(self):
        group = self.make_group(2)
        for replica in group.replicas:
            group.begin(replica)
            group.finish(replica, 0.05)
        # A rolling restart clears replica 1's EWMA; the fresh replica
        # must not win every tie against its equally-loaded sibling.
        group.drain(1)
        group.restore(1)
        assert group.replicas[1].ewma_latency_s is None
        assert group.pick().replica_id == 0

    def test_pick_deprioritizes_failing_replicas(self):
        group = self.make_group(2)
        flaky = group.replicas[0]
        group.begin(flaky)
        group.finish(flaky, outcome="error")
        assert group.pick().replica_id == 1
        assert flaky.failures == 1
        assert flaky.consecutive_failures == 1
        # One success clears the consecutive streak (not the lifetime
        # counter) and replica 0 wins the id tie-break again.
        group.begin(flaky)
        group.finish(flaky)
        assert flaky.consecutive_failures == 0
        assert flaky.failures == 1
        assert group.pick().replica_id == 0

    def test_pick_skips_draining_until_no_alternative(self):
        group = self.make_group(2)
        group.drain(0)
        for _ in range(3):
            assert group.pick().replica_id == 1
        # Every sibling excluded: the draining replica is still better
        # than answering nobody (degrade fallback).
        assert group.pick(exclude=[1]).replica_id == 0
        group.restore(0)
        assert group.pick().replica_id == 0

    def test_pick_returns_none_when_all_excluded(self):
        group = self.make_group(2)
        assert group.pick(exclude=[0, 1]) is None

    def test_cancelled_finish_only_releases_the_slot(self):
        group = self.make_group(1)
        replica = group.replicas[0]
        group.begin(replica)
        group.finish(replica, 0.25, outcome="cancelled")
        assert replica.in_flight == 0
        assert replica.failures == 0
        assert replica.ewma_latency_s is None

    def test_group_rejects_transport_of_another_shard(self):
        with pytest.raises(ValueError, match="serves shard"):
            ReplicaGroup(0, [SearcherNode(1)])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="empty replica group"):
            ReplicaGroup(0, [])


class TestCircuitBreaker:
    def make_group(
        self, size: int = 2, threshold: int = 2, cooldown: float = 0.05
    ) -> ReplicaGroup:
        return ReplicaGroup(
            0,
            [SearcherNode(0) for _ in range(size)],
            breaker_threshold=threshold,
            breaker_cooldown_s=cooldown,
        )

    @staticmethod
    def fail(group: ReplicaGroup, replica) -> None:
        group.begin(replica)
        group.finish(replica, outcome="error")

    @staticmethod
    def state(group: ReplicaGroup, replica_id: int) -> str:
        return group.stats()["replicas"][replica_id]["breaker_state"]

    def test_trips_after_threshold_and_skips_open_replica(self):
        group = self.make_group(threshold=2, cooldown=60.0)
        flaky = group.replicas[0]
        self.fail(group, flaky)
        assert self.state(group, 0) == "closed"
        self.fail(group, flaky)
        assert self.state(group, 0) == "open"
        assert flaky.breaker_trips == 1
        for _ in range(3):
            assert group.pick().replica_id == 1

    def test_straggler_error_while_open_extends_without_new_trip(self):
        group = self.make_group(threshold=2, cooldown=60.0)
        flaky = group.replicas[0]
        self.fail(group, flaky)
        self.fail(group, flaky)
        # A request issued before the trip fails late: still one trip.
        self.fail(group, flaky)
        assert flaky.breaker_trips == 1
        assert self.state(group, 0) == "open"

    def test_half_open_probe_then_success_closes(self):
        group = self.make_group(threshold=1, cooldown=0.03)
        flaky = group.replicas[0]
        self.fail(group, flaky)
        assert self.state(group, 0) == "open"
        time.sleep(0.05)
        assert self.state(group, 0) == "half-open"
        probe = group.pick(exclude=[1])
        assert probe.replica_id == 0
        assert probe.breaker_probing
        group.begin(probe)
        group.finish(probe, 0.01)
        assert self.state(group, 0) == "closed"
        assert flaky.consecutive_failures == 0
        assert group.pick().replica_id == 0

    def test_failed_probe_reopens_with_new_trip(self):
        group = self.make_group(threshold=1, cooldown=0.03)
        flaky = group.replicas[0]
        self.fail(group, flaky)
        time.sleep(0.05)
        probe = group.pick(exclude=[1])
        assert probe.replica_id == 0
        self.fail(group, probe)
        assert self.state(group, 0) == "open"
        assert flaky.breaker_trips == 2

    def test_cancelled_probe_frees_the_probe_slot(self):
        group = self.make_group(threshold=1, cooldown=0.03)
        flaky = group.replicas[0]
        self.fail(group, flaky)
        time.sleep(0.05)
        probe = group.pick(exclude=[1])
        group.begin(probe)
        group.finish(probe, outcome="cancelled")
        assert not flaky.breaker_probing
        # The breaker is still half-open and a new probe may go out.
        assert group.pick(exclude=[1]).replica_id == 0

    def test_every_breaker_open_still_serves(self):
        group = self.make_group(size=1, threshold=1, cooldown=60.0)
        self.fail(group, group.replicas[0])
        assert self.state(group, 0) == "open"
        # Zero-drop fallback: a suspect replica beats answering nobody.
        assert group.pick().replica_id == 0

    def test_restore_clears_breaker_state(self):
        group = self.make_group(threshold=1, cooldown=60.0)
        self.fail(group, group.replicas[0])
        group.drain(0)
        group.restore(0)
        assert self.state(group, 0) == "closed"
        assert group.replicas[0].consecutive_failures == 0
        assert group.pick().replica_id == 0

    def test_disabled_by_default(self):
        group = ReplicaGroup(0, [SearcherNode(0), SearcherNode(0)])
        flaky = group.replicas[0]
        for _ in range(10):
            self.fail(group, flaky)
        assert self.state(group, 0) == "closed"
        assert flaky.breaker_trips == 0
        # Deprioritized, never blocked: the pre-breaker behaviour.
        assert group.pick(exclude=[1]).replica_id == 0

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="breaker_threshold"):
            self.make_group(threshold=-1)
        with pytest.raises(ValueError, match="breaker_cooldown_s"):
            self.make_group(cooldown=0.0)


class TestFleetSpec:
    def test_legacy_flat_string(self):
        assert parse_fleet_spec("a:1, b:2") == [["a:1"], ["b:2"]]

    def test_grouped_string(self):
        spec = "a:1,a:2; b:1 ,b:2"
        assert parse_fleet_spec(spec) == [["a:1", "a:2"], ["b:1", "b:2"]]

    def test_list_of_groups(self):
        assert parse_fleet_spec([["a:1", "a:2"], "b:1"]) == [
            ["a:1", "a:2"],
            ["b:1"],
        ]

    def test_explicit_empty_group_raises(self):
        with pytest.raises(ValueError, match="empty replica group"):
            parse_fleet_spec([["a:1"], []])


class TestFailover:
    @pytest.fixture()
    def servers(self, shared_fs, index):
        fleet = [start_server(shared_fs, shard) for shard in range(NUM_SHARDS)]
        yield fleet
        for server in fleet:
            server.stop()

    @pytest.fixture()
    def broker(self, servers, shared_fs, config):
        live = []
        for shard_id, server in enumerate(servers):
            transport = connect(server.address, shard_id)
            transport.verify()
            transport.deploy("r", INDEX_PATH, root=str(shared_fs.root))
            live.append(transport)
        # Replica 0 of group 0 is unreachable; its sibling must cover.
        broker = Broker(
            [[connect(DEAD_ADDRESS, 0), live[0]], [live[1]]],
            config,
            async_fanout=True,
            partial_policy="fail",
        )
        yield broker
        broker.close()
        for transport in live:
            transport.close()

    def test_dead_replica_fails_over_to_sibling(self, broker, queries):
        ids, dists = broker.search_batch("r", queries, 5)
        assert (ids >= 0).all()
        stats = broker.stats()
        assert stats["failovers"] >= 1
        dead = stats["replicas"][0]["replicas"][0]
        assert dead["failures"] >= 1
        # Later requests keep succeeding and the sibling absorbs the
        # load without re-burning a failover every time the ledger
        # already knows replica 0 is failing.
        ids2, _ = broker.search_batch("r", queries, 5)
        assert (ids2 >= 0).all()

    def test_exhausted_group_still_raises_under_fail(
        self, servers, shared_fs, config, queries
    ):
        live = connect(servers[1].address, 1)
        live.verify()
        live.deploy("r", INDEX_PATH, root=str(shared_fs.root))
        broker = Broker(
            [[connect(DEAD_ADDRESS, 0)], [live]],
            config,
            async_fanout=True,
            partial_policy="fail",
        )
        try:
            with pytest.raises(TransportError):
                broker.search_batch("r", queries, 5)
            # No sibling existed, so nothing "took over": dead ends are
            # not failovers.
            assert broker.stats()["failovers"] == 0
        finally:
            broker.close()
            live.close()


class TestCrossReplicaHedging:
    def test_hedge_lands_on_sibling_and_wins(
        self, shared_fs, index, config, queries
    ):
        # Replica 0 of group 0 stalls EVERY search by 0.4s; its sibling
        # is fast.  With a 30ms hedge delay the retry must land on the
        # sibling and win, keeping latency far under the stall.
        slow = start_server(
            shared_fs, 0, slow_every=1, slow_delay_s=0.4
        )
        fast = start_server(shared_fs, 0)
        other = start_server(shared_fs, 1)
        transports = []
        broker = None
        try:
            for server, shard_id in ((slow, 0), (fast, 0), (other, 1)):
                transport = connect(server.address, shard_id)
                transport.verify()
                transport.deploy("r", INDEX_PATH, root=str(shared_fs.root))
                transports.append(transport)
            broker = Broker(
                [[transports[0], transports[1]], [transports[2]]],
                config,
                async_fanout=True,
                partial_policy="fail",
            )
            response = broker.execute(
                SearchRequest(
                    queries=queries,
                    top_k=5,
                    index_name="r",
                    hedging=0.03,
                )
            )
            assert response.fully_answered
            assert response.replicas_used is not None
            assert len(response.replicas_used) == NUM_SHARDS
            stats = broker.stats()
            assert stats["hedges"] >= 1
            assert stats["hedge_wins"] >= 1
            # The winning replica of group 0 was the fast sibling.
            assert response.replicas_used[0] == 1
        finally:
            if broker is not None:
                broker.close()
            for transport in transports:
                transport.close()
            for server in (slow, fast, other):
                server.stop()


class TestRollingRestart:
    @pytest.fixture()
    def grid(self, shared_fs, index):
        """Two replica groups of two in-thread servers each."""
        servers = [
            [start_server(shared_fs, shard) for _ in range(2)]
            for shard in range(NUM_SHARDS)
        ]
        yield servers
        for group in servers:
            for server in group:
                server.stop()

    @pytest.fixture()
    def service(self, grid, shared_fs):
        service = OnlineService(
            searchers=[
                [server.address for server in group] for group in grid
            ],
            async_fanout=True,
            partial_policy="fail",
            request_timeout_s=30.0,
        )
        service.deploy(shared_fs, INDEX_PATH)
        yield service
        service.close()

    def test_rolling_restart_drops_zero_queries(
        self, grid, service, shared_fs, queries
    ):
        stop = threading.Event()
        errors: list[BaseException] = []
        degraded = [0]
        served = [0]

        def client():
            while not stop.is_set():
                try:
                    response = service.execute(
                        SearchRequest(
                            queries=queries, top_k=5, index_name="default"
                        )
                    )
                except BaseException as exc:
                    errors.append(exc)
                    return
                degraded[0] += response.degraded_rows
                served[0] += 1

        restarted: list[tuple[int, int]] = []

        def restart(shard_id: int, replica_id: int) -> None:
            old = grid[shard_id][replica_id]
            old.stop()
            grid[shard_id][replica_id] = start_server(
                shared_fs, shard_id, port=old.port
            )
            restarted.append((shard_id, replica_id))

        thread = threading.Thread(target=client)
        thread.start()
        try:
            service.rolling_restart(0, restart)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors, f"queries failed during restart: {errors[:1]!r}"
        assert degraded[0] == 0
        assert served[0] > 0
        assert restarted == [(0, 0), (0, 1)]
        # The restarted replicas host the index again: drain them
        # from the OTHER side and the group still answers.
        broker = service.brokers["default"]
        broker.groups[0].drain(1)
        try:
            response = service.execute(
                SearchRequest(queries=queries, top_k=5, index_name="default")
            )
            assert response.fully_answered
        finally:
            broker.groups[0].restore(1)

    def test_rolling_restart_requires_remote_fleet(self):
        service = OnlineService()
        with pytest.raises(ValueError, match="remote"):
            service.rolling_restart(0, lambda shard, replica: None)

    def test_rolling_restart_requires_a_sibling(self, grid):
        service = OnlineService(
            searchers=[group[0].address for group in grid],
            async_fanout=True,
        )
        try:
            with pytest.raises(ValueError, match="replica group of >= 2"):
                service.rolling_restart(0, lambda shard, replica: None)
        finally:
            service.close()

    def test_rolling_restart_shard_out_of_range(self, grid, service):
        with pytest.raises(ValueError, match="out of range"):
            service.rolling_restart(7, lambda shard, replica: None)
