"""Tests for the APD segmenter and its power-iteration SVD."""

import numpy as np
import pytest

from repro.segmenters.apd import ApdSegmenter, second_singular_vector
from repro.segmenters.base import segmenter_from_dict
from tests.conftest import make_clustered


def alignment(u, v) -> float:
    """|cos| between two directions (sign-invariant)."""
    return abs(float(u @ v) / (np.linalg.norm(u) * np.linalg.norm(v)))


class TestSecondSingularVector:
    def test_matches_numpy_svd(self):
        rng = np.random.default_rng(0)
        # Anisotropic data: distinct singular values so v2 is unique.
        data = rng.normal(size=(200, 6)) * np.array([10, 5, 2, 1, 0.5, 0.1])
        ours = second_singular_vector(data, seed=1)
        _, _, vt = np.linalg.svd(data, full_matrices=False)
        assert alignment(ours, vt[1]) > 0.99

    def test_unit_norm(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100, 8))
        vector = second_singular_vector(data, seed=0)
        assert np.linalg.norm(vector) == pytest.approx(1.0, rel=1e-5)

    def test_orthogonal_to_first(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(150, 5)) * np.array([8, 3, 1, 0.5, 0.2])
        _, _, vt = np.linalg.svd(data, full_matrices=False)
        ours = second_singular_vector(data, seed=0)
        assert alignment(ours, vt[0]) < 0.05

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(80, 4))
        a = second_singular_vector(data, seed=7)
        b = second_singular_vector(data, seed=7)
        np.testing.assert_allclose(a, b)

    def test_separates_two_clusters(self):
        """For two offset clusters, v2 aligns with the between-cluster
        direction once the mean direction (v1) is removed -- the spectral
        'sparsest cut' behaviour APD relies on."""
        rng = np.random.default_rng(4)
        offset = np.zeros(10)
        offset[3] = 6.0
        cluster_a = rng.normal(size=(150, 10)) + 10.0  # common mean
        cluster_b = rng.normal(size=(150, 10)) + 10.0 + offset
        data = np.concatenate([cluster_a, cluster_b])
        vector = second_singular_vector(data, seed=0)
        projections = data @ vector
        side_a = projections[:150] > np.median(projections)
        side_b = projections[150:] > np.median(projections)
        # The split should mostly separate the clusters.
        purity = max(
            (side_a.mean() + (1 - side_b.mean())) / 2,
            ((1 - side_a.mean()) + side_b.mean()) / 2,
        )
        assert purity > 0.9

    def test_needs_two_dimensions(self):
        with pytest.raises(ValueError):
            second_singular_vector(np.ones((10, 1)))

    def test_degenerate_rank_one_data_does_not_crash(self):
        direction = np.ones((1, 4))
        data = np.arange(1, 21, dtype=np.float64)[:, np.newaxis] @ direction
        vector = second_singular_vector(data, seed=0)
        assert np.isfinite(vector).all()


class TestApdSegmenter:
    @pytest.fixture(scope="class")
    def data(self):
        return make_clustered(600, 10, seed=9)

    def test_fit_and_route(self, data):
        segmenter = ApdSegmenter(4, seed=0).fit(data)
        routes = segmenter.route_data_batch(data)
        assert all(len(route) == 1 for route in routes)
        counts = np.bincount([r[0] for r in routes], minlength=4)
        assert counts.min() >= 0.5 * counts.max()

    def test_fewer_boundary_queries_than_rh_on_clustered_data(self, data):
        """APD picks the sparsest cut, so fewer queries should straddle
        the split than under a random hyperplane (the paper's motivation:
        'we would like to minimize the number of queries being routed to
        multiple segments')."""
        from repro.segmenters.rh import RandomHyperplaneSegmenter

        apd = ApdSegmenter(2, alpha=0.15, seed=0).fit(data)
        apd_fanout = np.mean(
            [len(r) for r in apd.route_query_batch(data)]
        )
        rh_fanouts = []
        for seed in range(5):
            rh = RandomHyperplaneSegmenter(2, alpha=0.15, seed=seed).fit(data)
            rh_fanouts.append(
                np.mean([len(r) for r in rh.route_query_batch(data)])
            )
        # Not strictly lower for every random draw, but lower than the
        # average random hyperplane.
        assert apd_fanout <= np.mean(rh_fanouts) + 0.05

    def test_iterations_validated(self):
        with pytest.raises(ValueError):
            ApdSegmenter(4, iterations=0)

    def test_serialization_roundtrip(self, data):
        segmenter = ApdSegmenter(
            4, alpha=0.1, spill_mode="physical", seed=3, iterations=50
        ).fit(data)
        restored = segmenter_from_dict(segmenter.to_dict())
        assert isinstance(restored, ApdSegmenter)
        assert restored.iterations == 50
        assert restored.route_data_batch(data[:50]) == (
            segmenter.route_data_batch(data[:50])
        )

    def test_deterministic(self, data):
        a = ApdSegmenter(4, seed=2).fit(data)
        b = ApdSegmenter(4, seed=2).fit(data)
        assert a.route_data_batch(data[:100]) == b.route_data_batch(data[:100])
