"""Shared fixtures for the test suite.

Datasets are deliberately small (hundreds of points, <= 32 dims) so the
full suite stays fast; recall assertions use generous-but-meaningful
thresholds that a correct implementation passes with margin and a broken
one does not.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.hnsw.params import HnswParams
from repro.offline.brute_force import exact_top_k
from repro.sparklite.cluster import LocalCluster
from repro.storage.hdfs import LocalHdfs

#: Small HNSW parameters shared by tests that build indices.
FAST_HNSW = HnswParams(M=8, ef_construction=48, ef_search=48, seed=0)


def make_clustered(
    n: int, dim: int, *, num_clusters: int = 8, seed: int = 0, scale: float = 4.0
) -> np.ndarray:
    """Clustered float32 data (locality for segmenters to exploit)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=scale, size=(num_clusters, dim))
    assignment = rng.integers(0, num_clusters, size=n)
    data = centers[assignment] + rng.normal(size=(n, dim))
    return data.astype(np.float32)


@pytest.fixture(scope="session")
def clustered_data() -> np.ndarray:
    """600 x 16 clustered base vectors."""
    return make_clustered(600, 16, seed=1)


@pytest.fixture(scope="session")
def clustered_queries(clustered_data) -> np.ndarray:
    """40 in-distribution queries for :func:`clustered_data`."""
    rng = np.random.default_rng(2)
    rows = rng.integers(0, clustered_data.shape[0], size=40)
    noise = rng.normal(scale=0.2, size=(40, clustered_data.shape[1]))
    return (clustered_data[rows] + noise).astype(np.float32)


@pytest.fixture(scope="session")
def clustered_truth(clustered_data, clustered_queries) -> np.ndarray:
    """Exact top-20 ids for the clustered fixture."""
    ids, _ = exact_top_k(clustered_data, clustered_queries, 20)
    return ids


@pytest.fixture
def fs(tmp_path) -> LocalHdfs:
    """A fresh LocalHdfs rooted in the test's tmp dir."""
    return LocalHdfs(tmp_path / "hdfs")


@pytest.fixture
def cluster(fs) -> LocalCluster:
    """A 4-executor inline cluster with the tmp filesystem attached."""
    return LocalCluster(num_executors=4, fs=fs)


@pytest.fixture(scope="session", autouse=True)
def _concurrency_sanitizer():
    """Run the whole suite under the concurrency sanitizer.

    Enabled by ``REPRO_SANITIZE=1``: every lock created during the run
    is tracked, lock-order inversions and blocking calls made while
    holding a lock are recorded, and the session fails at teardown if
    anything was found — the stress/property tests double as race
    tests.  Off by default (zero overhead).
    """
    if os.environ.get("REPRO_SANITIZE") != "1":
        yield
        return
    from repro.analysis import sanitizer

    sanitizer.install()
    sanitizer.reset()
    yield
    found = sanitizer.violations()
    assert not found, (
        f"concurrency sanitizer recorded {len(found)} violation(s):\n"
        + sanitizer.format_violations()
    )
