"""Tests for LannsConfig validation and serialization."""

import dataclasses

import pytest

from repro.core.config import LannsConfig
from repro.errors import ConfigError
from repro.hnsw.params import HnswParams


class TestValidation:
    def test_defaults_valid(self):
        config = LannsConfig()
        assert config.partitioning == (1, 1)
        assert config.total_partitions == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_shards": 0},
            {"num_segments": 0},
            {"segmenter": "annoy"},
            {"segmenter": "rh", "num_segments": 6},
            {"segmenter": "apd", "num_segments": 3},
            {"alpha": 0.5},
            {"alpha": -0.1},
            {"spill_mode": "none"},
            {"metric": "hamming"},
            {"topk_confidence": 0.0},
            {"topk_confidence": 1.0},
            {"segmenter_sample_size": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            LannsConfig(**kwargs)

    def test_rs_allows_non_power_of_two(self):
        config = LannsConfig(segmenter="rs", num_segments=6)
        assert config.num_segments == 6

    def test_partitioning_notation(self):
        config = LannsConfig(num_shards=2, num_segments=4)
        assert config.partitioning == (2, 4)
        assert config.total_partitions == 8


class TestUpdatesAndSerialization:
    def test_with_updates_validates(self):
        config = LannsConfig()
        updated = config.with_updates(num_shards=3)
        assert updated.num_shards == 3
        assert config.num_shards == 1  # original untouched
        with pytest.raises(ConfigError):
            config.with_updates(alpha=0.9)

    def test_roundtrip(self):
        config = LannsConfig(
            num_shards=2,
            num_segments=8,
            segmenter="apd",
            alpha=0.1,
            spill_mode="physical",
            metric="cosine",
            hnsw=HnswParams(M=10, ef_construction=64),
            topk_confidence=0.9,
            use_per_shard_topk=False,
            seed=42,
        )
        restored = LannsConfig.from_dict(config.to_dict())
        assert restored == config

    def test_from_dict_defaults_missing_hnsw(self):
        payload = LannsConfig().to_dict()
        del payload["hnsw"]
        assert LannsConfig.from_dict(payload).hnsw == HnswParams()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            LannsConfig().num_shards = 5
