"""Tests for the repo-specific invariant linter (``repro.analysis``).

Each checker gets a must-flag fixture (a seeded violation it has to
catch) and a must-pass fixture (idiomatic code it must not flag),
including the known false-positive traps: lock-free initialisation in
``__init__``, ``*_locked`` helper methods, executor thunks nested in
async defs, and ``.result()`` on a completed asyncio task.
"""

import textwrap

import pytest

from repro.analysis import check_async, check_determinism, check_errors, check_locks
from repro.analysis.baseline import (
    BaselineError,
    Suppression,
    apply_baseline,
    parse_baseline,
)
from repro.analysis.check_wire import run_wire
from repro.analysis.diagnostics import Finding, ModuleSource, enclosing_symbol
from repro.analysis.linter import default_repo_root, main, run_lint


def _mod(source: str, path: str = "src/repro/net/example.py") -> ModuleSource:
    return ModuleSource.parse(path, textwrap.dedent(source))


def _rules(findings) -> set:
    return {(f.checker, f.rule) for f in findings}


# -- lock-discipline ----------------------------------------------------------------


class TestLockDiscipline:

    GUARDED = """
        import threading

        class Ledger:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []
                self.total = 0

            def add(self, item):
                with self._lock:
                    self._items.append(item)
                    self.total += 1
        """

    ROGUE = GUARDED + """
            def rogue(self, item):
                self._items.append(item)
        """

    def test_unguarded_write_flagged(self):
        findings = check_locks.run(_mod(self.ROGUE))
        assert ("lock-discipline", "unguarded-access") in _rules(findings)
        (finding,) = [f for f in findings if f.rule == "unguarded-access"]
        assert "Ledger.rogue" in finding.symbol
        assert "_items" in finding.message

    def test_guarded_class_clean(self):
        assert check_locks.run(_mod(self.GUARDED)) == []

    def test_init_lockfree_setup_not_flagged(self):
        # __init__ builds state before the object escapes; requiring the
        # lock there is the classic guarded-by false positive.
        source = """
            import threading

            class Cache:
                def __init__(self, seed):
                    self._lock = threading.Lock()
                    self._entries = {}
                    self._entries.update(seed)

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value
            """
        assert check_locks.run(_mod(source)) == []

    def test_locked_suffix_helper_exempt(self):
        # *_locked helpers document "caller holds the lock" — the checker
        # must trust that convention instead of flagging every call.
        source = """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pending = []

                def push(self, item):
                    with self._lock:
                        self._pending.append(item)

                def _drain_locked(self):
                    drained = list(self._pending)
                    self._pending.clear()
                    return drained
            """
        assert check_locks.run(_mod(source)) == []

    def test_unlocked_class_ignored(self):
        # No lock attribute -> no guarded-by inference at all.
        source = """
            class Plain:
                def __init__(self):
                    self.items = []

                def add(self, item):
                    self.items.append(item)
            """
        assert check_locks.run(_mod(source)) == []


# -- asyncio-hygiene ----------------------------------------------------------------


class TestAsyncHygiene:

    def test_time_sleep_in_async_def_flagged(self):
        source = """
            import time

            async def poll():
                time.sleep(0.1)
            """
        findings = check_async.run(_mod(source))
        assert ("asyncio-hygiene", "blocking-sleep") in _rules(findings)

    def test_asyncio_sleep_clean(self):
        source = """
            import asyncio

            async def poll():
                await asyncio.sleep(0.1)
            """
        assert check_async.run(_mod(source)) == []

    def test_sync_def_not_in_scope(self):
        source = """
            import time

            def worker():
                time.sleep(0.1)
            """
        assert check_async.run(_mod(source)) == []

    def test_executor_thunk_nested_in_async_def_clean(self):
        # The blocking call lives in a nested sync def handed to
        # run_in_executor — exactly how blocking work *should* be done.
        source = """
            import asyncio
            import time

            async def search(loop):
                def blocking():
                    time.sleep(0.5)
                    return 42

                return await loop.run_in_executor(None, blocking)
            """
        assert check_async.run(_mod(source)) == []

    def test_future_result_flagged(self):
        source = """
            async def gather(future):
                return future.result()
            """
        findings = check_async.run(_mod(source))
        assert ("asyncio-hygiene", "future-result") in _rules(findings)

    def test_result_on_completed_task_clean(self):
        # .result() on an awaited asyncio.Task never blocks.
        source = """
            import asyncio

            async def gather(coro):
                task = asyncio.create_task(coro)
                await asyncio.wait([task])
                return task.result()
            """
        assert check_async.run(_mod(source)) == []

    def test_sync_socket_recv_flagged(self):
        source = """
            async def read(sock):
                return sock.recv(4096)
            """
        findings = check_async.run(_mod(source))
        assert ("asyncio-hygiene", "sync-socket") in _rules(findings)

    def test_sync_client_in_async_def_flagged(self):
        source = """
            async def fan_out(address):
                client = RemoteSearcherClient(address)
                return client
            """
        findings = check_async.run(_mod(source))
        assert ("asyncio-hygiene", "sync-client") in _rules(findings)


# -- determinism --------------------------------------------------------------------


class TestDeterminism:

    PATH = "src/repro/hnsw/example.py"

    def test_legacy_np_random_flagged(self):
        source = """
            import numpy as np

            def jitter(n):
                return np.random.rand(n)
            """
        findings = check_determinism.run(_mod(source, self.PATH))
        assert ("determinism", "legacy-np-random") in _rules(findings)

    def test_unseeded_default_rng_flagged(self):
        source = """
            import numpy as np

            def make_rng():
                return np.random.default_rng()
            """
        findings = check_determinism.run(_mod(source, self.PATH))
        assert ("determinism", "unseeded-rng") in _rules(findings)

    def test_seeded_default_rng_clean(self):
        source = """
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(seed)
            """
        assert check_determinism.run(_mod(source, self.PATH)) == []

    def test_stdlib_random_flagged(self):
        source = """
            import random

            def pick(items):
                return random.choice(items)
            """
        findings = check_determinism.run(_mod(source, self.PATH))
        assert ("determinism", "stdlib-random") in _rules(findings)

    def test_wall_clock_flagged(self):
        source = """
            import time

            def stamp():
                return time.time()
            """
        findings = check_determinism.run(_mod(source, self.PATH))
        assert ("determinism", "wall-clock") in _rules(findings)

    def test_perf_counter_clean(self):
        # Monotonic timers are fine — only wall clocks leak real time
        # into kernel outputs.
        source = """
            import time

            def stamp():
                return time.perf_counter()
            """
        assert check_determinism.run(_mod(source, self.PATH)) == []


# -- error-discipline ---------------------------------------------------------------


class TestErrorDiscipline:

    TAXONOMY = {"LannsError", "ConfigError", "TransportError"}

    def _run(self, source: str):
        return check_errors.run(_mod(source), self.TAXONOMY)

    def test_off_taxonomy_raise_flagged(self):
        source = """
            def connect(address):
                raise MadeUpNetworkError(address)
            """
        findings = self._run(source)
        assert ("error-discipline", "off-taxonomy-raise") in _rules(findings)

    def test_taxonomy_and_builtin_raises_clean(self):
        source = """
            def connect(address, retries):
                if retries < 0:
                    raise ValueError(f"retries must be >= 0, got {retries}")
                raise TransportError(address)
            """
        assert self._run(source) == []

    def test_locally_defined_error_clean(self):
        source = """
            class HandshakeError(Exception):
                pass

            def connect(address):
                raise HandshakeError(address)
            """
        assert self._run(source) == []

    def test_bare_reraise_clean(self):
        source = """
            def forward(primary, failures):
                try:
                    return primary()
                except Exception:
                    raise
            """
        assert self._run(source) == []

    def test_silent_swallow_flagged(self):
        source = """
            def cleanup(resource):
                try:
                    resource.close()
                except Exception:
                    pass
            """
        findings = self._run(source)
        assert ("error-discipline", "silent-swallow") in _rules(findings)

    def test_suppress_exception_flagged(self):
        source = """
            from contextlib import suppress

            def cleanup(resource):
                with suppress(Exception):
                    resource.close()
            """
        findings = self._run(source)
        assert ("error-discipline", "silent-swallow") in _rules(findings)

    def test_narrow_suppress_clean(self):
        source = """
            from contextlib import suppress

            def cleanup(resource):
                with suppress(OSError):
                    resource.close()
            """
        assert self._run(source) == []

    def test_handled_broad_except_clean(self):
        # Broad catches are fine when the error is *used* (logged,
        # recorded, re-raised) — only silent drops are flagged.
        source = """
            import sys

            def cleanup(resource):
                try:
                    resource.close()
                except Exception as exc:
                    print(f"close failed: {exc}", file=sys.stderr)
            """
        assert self._run(source) == []


# -- wire-protocol ------------------------------------------------------------------


PROTOCOL_TEMPLATE = """
    class MsgType:
        SEARCH = "search"
        RESULT = "result"
        ERROR = "error"

    SUPPORTED_VERSIONS = (1, 2)

    FRAME_FIELDS = {registry}
    """

GOOD_REGISTRY = """{
        "SEARCH": {1: ("index", "top_k"), 2: ("index", "top_k", "trace?")},
        "RESULT": {1: ("index",)},
        "ERROR": {1: ("error_type", "message")},
    }"""


class TestWireProtocol:

    def _protocol(self, registry: str) -> ModuleSource:
        return _mod(
            PROTOCOL_TEMPLATE.format(registry=registry),
            "src/repro/net/protocol.py",
        )

    def test_consistent_registry_clean(self):
        assert run_wire(self._protocol(GOOD_REGISTRY)) == []

    def test_missing_entry_flagged(self):
        registry = """{
            "SEARCH": {1: ("index", "top_k")},
            "RESULT": {1: ("index",)},
        }"""
        findings = run_wire(self._protocol(registry))
        assert any(
            f.rule == "registry" and "ERROR" in f.message for f in findings
        )

    def test_non_prefix_evolution_flagged(self):
        # v2 reorders v1's fields: decoding a v1 frame with v2 framing
        # would silently shear the header, so this must be fatal.
        registry = """{
            "SEARCH": {1: ("index", "top_k"), 2: ("top_k", "index", "trace?")},
            "RESULT": {1: ("index",)},
            "ERROR": {1: ("error_type", "message")},
        }"""
        findings = run_wire(self._protocol(registry))
        assert any(
            f.rule == "registry" and "prefix" in f.message for f in findings
        )

    def test_unknown_version_flagged(self):
        registry = """{
            "SEARCH": {1: ("index", "top_k"), 7: ("index", "top_k", "x?")},
            "RESULT": {1: ("index",)},
            "ERROR": {1: ("error_type", "message")},
        }"""
        findings = run_wire(self._protocol(registry))
        assert any(
            f.rule == "registry" and "SUPPORTED_VERSIONS" in f.message
            for f in findings
        )

    def test_encoder_undeclared_field_flagged(self):
        client = _mod(
            """
            from repro.net.protocol import MsgType, encode_frame

            def search(index, top_k):
                return encode_frame(
                    MsgType.SEARCH,
                    {"index": index, "top_k": top_k, "bogus": 1},
                )
            """,
            "src/repro/net/client.py",
        )
        findings = run_wire(self._protocol(GOOD_REGISTRY), client=client)
        assert any(
            f.rule == "undeclared-field" and "bogus" in f.message
            for f in findings
        )

    def test_encoder_missing_required_field_flagged(self):
        client = _mod(
            """
            from repro.net.protocol import MsgType, encode_frame

            def report(error_type):
                return encode_frame(MsgType.ERROR, {"error_type": error_type})
            """,
            "src/repro/net/client.py",
        )
        findings = run_wire(self._protocol(GOOD_REGISTRY), client=client)
        assert any(
            f.rule == "missing-required-field" and "message" in f.message
            for f in findings
        )

    def test_complete_encoder_clean(self):
        client = _mod(
            """
            from repro.net.protocol import MsgType, encode_frame

            def search(index, top_k):
                return encode_frame(
                    MsgType.SEARCH, {"index": index, "top_k": top_k}
                )
            """,
            "src/repro/net/client.py",
        )
        assert run_wire(self._protocol(GOOD_REGISTRY), client=client) == []


# -- baseline -----------------------------------------------------------------------


class TestBaseline:

    def test_justified_entry_parses(self):
        text = textwrap.dedent(
            """
            [[suppression]]
            checker = "lock-discipline"
            file = "src/repro/online/broker.py"
            rule = "unguarded-access"
            symbol = "Broker.search"
            justification = "copy-on-write table; locking would serialize reads"
            """
        )
        (supp,) = parse_baseline(text)
        assert supp.checker == "lock-discipline"
        assert supp.symbol == "Broker.search"

    def test_missing_justification_rejected(self):
        text = textwrap.dedent(
            """
            [[suppression]]
            checker = "lock-discipline"
            file = "src/repro/online/broker.py"
            """
        )
        with pytest.raises(BaselineError):
            parse_baseline(text)

    def test_apply_filters_and_reports_stale(self):
        hit = Finding(
            checker="lock-discipline",
            rule="unguarded-access",
            path="src/repro/online/broker.py",
            line=10,
            message="m",
            symbol="Broker.search",
        )
        other = Finding(
            checker="determinism",
            rule="wall-clock",
            path="src/repro/hnsw/index.py",
            line=5,
            message="m",
        )
        matching = Suppression(
            checker="lock-discipline",
            file="src/repro/online/broker.py",
            justification="why",
            symbol="Broker.search",
        )
        stale_supp = Suppression(
            checker="asyncio-hygiene",
            file="src/repro/net/client.py",
            justification="why",
        )
        kept, stale = apply_baseline([hit, other], [matching, stale_supp])
        assert kept == [other]
        assert stale == [stale_supp]


# -- driver / diagnostics -----------------------------------------------------------


class TestDriver:

    def test_enclosing_symbol(self):
        module = _mod(
            """
            class Outer:
                def method(self):
                    return 1

            def free():
                return 2
            """
        )
        assert enclosing_symbol(module.tree, 4) == "Outer.method"
        assert enclosing_symbol(module.tree, 7) == "free"

    def test_github_format_escapes(self):
        finding = Finding(
            checker="determinism",
            rule="wall-clock",
            path="src/repro/hnsw/index.py",
            line=3,
            message="100% wrong\nsecond line",
        )
        rendered = finding.format_github()
        assert rendered.startswith("::error file=src/repro/hnsw/index.py,")
        assert "%25" in rendered and "%0A" in rendered
        assert "\n" not in rendered

    def test_repo_lints_clean_under_baseline(self):
        # The acceptance bar for the whole PR: the real tree, with the
        # checked-in baseline, has zero unsuppressed findings.
        assert main([]) == 0

    def test_repo_has_no_parse_errors(self):
        _, errors = run_lint(default_repo_root())
        assert errors == []
