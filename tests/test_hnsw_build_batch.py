"""Tests for the batched lockstep construction path (PR 5).

Covers the wave kernels (per-target batched descent, multi-problem
neighbor selection), the wave insert's determinism and graph invariants,
recall parity against the sequential builder, and the vectorised
serialization / id-validation paths.
"""

import numpy as np
import pytest

from repro.data.synthetic import clustered_gaussians
from repro.hnsw.graph import HnswGraph
from repro.hnsw.heuristic import (
    select_neighbors_heuristic,
    select_neighbors_heuristic_batch,
)
from repro.hnsw.index import HnswIndex, build_hnsw
from repro.hnsw.params import HnswParams
from repro.hnsw.search import descend_to_level, descend_to_levels_batch
from repro.offline.brute_force import exact_top_k
from repro.offline.recall import recall_at_k
from tests.conftest import make_clustered


def fast_params(**overrides) -> HnswParams:
    defaults = dict(M=8, ef_construction=48, ef_search=48, seed=0)
    defaults.update(overrides)
    return HnswParams(**defaults)


def payloads_equal(a: dict, b: dict) -> bool:
    return a.keys() == b.keys() and all(
        np.array_equal(a[key], b[key]) for key in a
    )


class TestDescendToLevelsBatch:
    def test_matches_per_query_descent(self, clustered_data):
        index = build_hnsw(clustered_data, params=fast_params())
        graph, scorer = index.graph, index._scorer
        rng = np.random.default_rng(7)
        queries = scorer.prepare_queries(
            clustered_data[rng.integers(0, len(clustered_data), 24)]
        )
        targets = rng.integers(0, max(graph.max_level, 1), 24).tolist()
        entries, dists = descend_to_levels_batch(
            graph, scorer, queries, targets, scorer.query_sq_norms(queries)
        )
        for row in range(queries.shape[0]):
            entry, dist = descend_to_level(
                graph, scorer, queries[row], targets[row]
            )
            assert entries[row] == entry
            # score_pairs (einsum) and score_ids (matvec) accumulate
            # float32 in different orders; equality is structural.
            assert dists[row] == pytest.approx(dist, rel=1e-4)

    def test_empty_batch(self, clustered_data):
        index = build_hnsw(clustered_data[:50], params=fast_params())
        entries, dists = descend_to_levels_batch(
            index.graph,
            index._scorer,
            np.empty((0, clustered_data.shape[1]), dtype=np.float32),
            [],
        )
        assert entries == [] and dists == []


class TestHeuristicBatch:
    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "inner_product"])
    @pytest.mark.parametrize("keep_pruned", [True, False])
    def test_batch_matches_single(self, metric, keep_pruned):
        rng = np.random.default_rng(3)
        from repro.distance.scorer import Scorer

        scorer = Scorer(metric, 12)
        scorer.add(rng.standard_normal((200, 12)).astype(np.float32))
        problems = []
        for size in (1, 3, 8, 20, 40):
            ids = rng.choice(200, size=size, replace=False)
            dists = rng.random(size).tolist()
            problems.append(list(zip(dists, ids.tolist())))
        for m in (1, 4, 10):
            batched = select_neighbors_heuristic_batch(
                scorer, problems, m, keep_pruned=keep_pruned
            )
            for problem, result in zip(problems, batched):
                single = select_neighbors_heuristic(
                    scorer, problem, m, keep_pruned=keep_pruned
                )
                assert result == single

    def test_grouping_invariance(self):
        """A problem's result must not depend on its batch-mates."""
        rng = np.random.default_rng(5)
        from repro.distance.scorer import Scorer

        scorer = Scorer("euclidean", 8)
        scorer.add(rng.standard_normal((100, 8)).astype(np.float32))
        problems = [
            list(
                zip(
                    rng.random(size).tolist(),
                    rng.choice(100, size=size, replace=False).tolist(),
                )
            )
            for size in (30, 7, 18)
        ]
        together = select_neighbors_heuristic_batch(scorer, problems, 5)
        for position, problem in enumerate(problems):
            alone = select_neighbors_heuristic_batch(scorer, [problem], 5)[0]
            assert together[position] == alone

    def test_zero_m(self):
        from repro.distance.scorer import Scorer

        scorer = Scorer("euclidean", 4)
        scorer.add(np.eye(4, dtype=np.float32))
        assert select_neighbors_heuristic_batch(
            scorer, [[(0.5, 0)], [(0.1, 1)]], 0
        ) == [[], []]


class TestBatchedBuildDeterminism:
    @pytest.mark.parametrize("wave", [4, 16, 64])
    def test_same_seed_same_graph(self, wave):
        base = make_clustered(300, 12, seed=3)
        params = fast_params(build_batch=wave)
        first = build_hnsw(base, params=params).to_arrays()
        second = build_hnsw(base, params=params).to_arrays()
        assert payloads_equal(first, second)

    def test_seed_changes_graph(self):
        base = make_clustered(300, 12, seed=3)
        a = build_hnsw(base, params=fast_params(build_batch=16)).to_arrays()
        b = build_hnsw(
            base, params=fast_params(build_batch=16, seed=9)
        ).to_arrays()
        assert not payloads_equal(a, b)

    def test_incremental_adds_deterministic(self):
        base = make_clustered(240, 10, seed=4)

        def build():
            index = HnswIndex(dim=10, params=fast_params(build_batch=32))
            for start in range(0, 240, 80):
                index.add(base[start : start + 80])
            return index.to_arrays()

        assert payloads_equal(build(), build())

    def test_level_stream_matches_sequential(self):
        """Both paths draw one level per row from the same RNG stream."""
        base = make_clustered(200, 10, seed=6)
        sequential = build_hnsw(base, params=fast_params(build_batch=1))
        batched = build_hnsw(base, params=fast_params(build_batch=32))
        assert sequential.graph.levels == batched.graph.levels


class TestBatchedBuildStructure:
    @pytest.mark.parametrize(
        "metric", ["euclidean", "cosine", "inner_product"]
    )
    def test_invariants_hold(self, metric):
        base = make_clustered(400, 12, seed=5)
        index = build_hnsw(
            base, metric=metric, params=fast_params(build_batch=32)
        )
        index.graph.check_invariants(
            index.params.effective_max_m, index.params.effective_max_m0
        )

    def test_simple_selection_ablation(self):
        """use_heuristic=False flows through the wave path too."""
        base = make_clustered(300, 10, seed=7)
        params = fast_params(build_batch=32, use_heuristic=False)
        index = build_hnsw(base, params=params)
        index.graph.check_invariants(
            index.params.effective_max_m, index.params.effective_max_m0
        )
        repeat = build_hnsw(base, params=params)
        assert payloads_equal(index.to_arrays(), repeat.to_arrays())

    def test_small_adds_and_bootstrap(self):
        index = HnswIndex(dim=6, params=fast_params(build_batch=64))
        rng = np.random.default_rng(0)
        index.add(rng.standard_normal(6).astype(np.float32))  # single row
        index.add(rng.standard_normal((3, 6)).astype(np.float32))
        index.add(rng.standard_normal((70, 6)).astype(np.float32))
        assert len(index) == 74
        index.graph.check_invariants(
            index.params.effective_max_m, index.params.effective_max_m0
        )
        ids, dists = index.search_batch(
            rng.standard_normal((5, 6)).astype(np.float32), 3
        )
        assert (ids >= 0).all()

    def test_every_node_reachable(self):
        """Wave members must end up linked into the graph, not orphaned."""
        base = make_clustered(500, 8, seed=8)
        index = build_hnsw(base, params=fast_params(build_batch=64))
        ids, _ = index.search_batch(base, 1, ef=64)
        assert recall_at_k(ids, np.arange(500)[:, None], 1) > 0.95

    def test_serialization_roundtrip(self, tmp_path):
        base = make_clustered(300, 12, seed=9)
        index = build_hnsw(base, params=fast_params(build_batch=32))
        path = str(tmp_path / "index.npz")
        index.save(path)
        loaded = HnswIndex.load(path)
        assert payloads_equal(index.to_arrays(), loaded.to_arrays())
        queries = base[:10]
        a = index.search_batch(queries, 5)
        b = loaded.search_batch(queries, 5)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])


class TestBatchedBuildRecall:
    def test_recall_within_tolerance_of_sequential(self):
        base = clustered_gaussians(2000, 16, seed=0)
        queries = clustered_gaussians(100, 16, seed=1)
        truth, _ = exact_top_k(base, queries, 10)
        recalls = {}
        for wave in (1, 64):
            index = build_hnsw(base, params=fast_params(build_batch=wave))
            ids, _ = index.search_batch(queries, 10, ef=64)
            recalls[wave] = recall_at_k(ids, truth, 10)
        assert recalls[64] >= recalls[1] - 0.05
        assert recalls[64] > 0.8

    def test_cosine_recall(self):
        base = clustered_gaussians(1000, 16, seed=2)
        queries = clustered_gaussians(50, 16, seed=3)
        truth, _ = exact_top_k(base, queries, 10, metric="cosine")
        index = build_hnsw(
            base, metric="cosine", params=fast_params(build_batch=32)
        )
        ids, _ = index.search_batch(queries, 10, ef=64)
        assert recall_at_k(ids, truth, 10) > 0.8


class TestVectorisedValidation:
    def test_duplicate_within_call(self):
        index = HnswIndex(dim=4, params=fast_params())
        with pytest.raises(ValueError, match="duplicate ids"):
            index.add(np.eye(4, dtype=np.float32), ids=np.array([0, 1, 1, 2]))

    def test_clash_with_existing_reports_first(self):
        index = HnswIndex(dim=4, params=fast_params())
        index.add(np.eye(4, dtype=np.float32), ids=np.array([5, 6, 7, 8]))
        with pytest.raises(ValueError, match="id 7 already present"):
            index.add(
                np.eye(4, dtype=np.float32), ids=np.array([9, 7, 6, 10])
            )

    def test_clash_detected_in_bulk_adds(self):
        """The vectorised (large-batch) membership path reports clashes."""
        rng = np.random.default_rng(1)
        index = HnswIndex(dim=4, params=fast_params())
        index.add(
            rng.standard_normal((8, 4)).astype(np.float32),
            ids=np.arange(2000, 2008),
        )
        bulk_ids = np.arange(1024)
        bulk_ids[700] = 2003  # collides with an existing id
        with pytest.raises(ValueError, match="id 2003 already present"):
            index.add(
                rng.standard_normal((1024, 4)).astype(np.float32),
                ids=bulk_ids,
            )
        # And a clean bulk add of the same size goes through.
        index.add(
            rng.standard_normal((1024, 4)).astype(np.float32),
            ids=np.arange(1024),
        )
        assert len(index) == 8 + 1024

    def test_negative_ids_rejected(self):
        index = HnswIndex(dim=4, params=fast_params())
        with pytest.raises(ValueError, match="non-negative"):
            index.add(np.eye(4, dtype=np.float32), ids=np.array([0, 1, -2, 3]))

    def test_build_batch_validation(self):
        with pytest.raises(ValueError, match="build_batch"):
            HnswParams(build_batch=-1)
        # 0 and 1 are valid (sequential path).
        assert HnswParams(build_batch=0).build_batch == 0

    def test_params_roundtrip_includes_build_batch(self):
        params = fast_params(build_batch=17)
        assert HnswParams.from_dict(params.to_dict()).build_batch == 17


class TestBulkGraphOps:
    def test_add_nodes_matches_add_node(self):
        a, b = HnswGraph(), HnswGraph()
        levels = [0, 2, 1, 0, 3]
        for level in levels:
            a.add_node(level)
        assert b.add_nodes(levels) == 0
        assert a.levels == b.levels
        assert all(
            a.neighbors(node, 0) == b.neighbors(node, 0)
            for node in range(len(levels))
        )

    def test_add_nodes_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            HnswGraph().add_nodes([0, -1])

    def test_set_level_csr(self):
        graph = HnswGraph()
        graph.add_nodes([1, 0, 1])
        # Level-1 adjacency: node 0 -> [2], node 2 -> [0]; node 1 absent.
        graph.set_level_csr(1, [0, 2], [0, 1, 1, 2], [2, 0])
        assert graph.neighbors(0, 1) == [2]
        assert graph.neighbors(2, 1) == [0]
