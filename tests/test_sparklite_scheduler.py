"""Tests for LPT scheduling and the simulated-makespan model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparklite.scheduler import lpt_assignment, simulated_makespan

durations_strategy = st.lists(
    st.floats(0.0, 100.0, allow_nan=False), min_size=0, max_size=40
)


class TestLptAssignment:
    def test_every_task_assigned_once(self):
        durations = [5.0, 3.0, 8.0, 1.0, 2.0]
        assignment = lpt_assignment(durations, 2)
        flat = sorted(task for tasks in assignment for task in tasks)
        assert flat == [0, 1, 2, 3, 4]

    def test_single_executor_gets_everything(self):
        assignment = lpt_assignment([1.0, 2.0, 3.0], 1)
        assert sorted(assignment[0]) == [0, 1, 2]

    def test_balances_equal_tasks(self):
        assignment = lpt_assignment([1.0] * 8, 4)
        assert all(len(tasks) == 2 for tasks in assignment)

    def test_validation(self):
        with pytest.raises(ValueError):
            lpt_assignment([1.0], 0)
        with pytest.raises(ValueError):
            lpt_assignment([-1.0], 2)


class TestSimulatedMakespan:
    def test_empty_tasks(self):
        assert simulated_makespan([], 4) == 0.0

    def test_one_executor_is_total_work(self):
        durations = [3.0, 1.0, 4.0]
        assert simulated_makespan(durations, 1) == pytest.approx(8.0)

    def test_many_executors_floor_at_longest_task(self):
        durations = [10.0, 1.0, 1.0, 1.0]
        assert simulated_makespan(durations, 100) == pytest.approx(10.0)

    def test_known_lpt_schedule(self):
        # LPT on [8,5,4,3,2] with 2 executors: 8+3 vs 5+4+2 -> 11.
        assert simulated_makespan([8, 5, 4, 3, 2], 2) == pytest.approx(11.0)

    @given(durations_strategy, st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_bounds(self, durations, executors):
        """Makespan lies between the trivial lower bounds and total work."""
        makespan = simulated_makespan(durations, executors)
        total = sum(durations)
        longest = max(durations, default=0.0)
        assert makespan <= total + 1e-9
        assert makespan >= longest - 1e-9
        assert makespan >= total / executors - 1e-9

    @given(durations_strategy, st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_executors(self, durations, executors):
        """More executors never increases the simulated time -- the
        property behind the paper's executor sweeps."""
        assert (
            simulated_makespan(durations, executors + 1)
            <= simulated_makespan(durations, executors) + 1e-9
        )
