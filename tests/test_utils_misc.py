"""Tests for RNG helpers and validation utilities."""

import numpy as np
import pytest

from repro.utils.rng import resolve_rng, spawn_seeds
from repro.utils.validation import (
    as_matrix,
    as_vector,
    check_positive,
    check_probability,
)


class TestResolveRng:
    def test_accepts_seed(self):
        a = resolve_rng(42)
        b = resolve_rng(42)
        assert a.random() == b.random()

    def test_passes_generator_through(self):
        rng = np.random.default_rng(0)
        assert resolve_rng(rng) is rng

    def test_none_gives_fresh_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        first = spawn_seeds(7, 5)
        second = spawn_seeds(7, 5)
        assert len(first) == 5
        assert first == second

    def test_children_are_distinct(self):
        seeds = spawn_seeds(0, 50)
        assert len(set(seeds)) == 50

    def test_different_parents_differ(self):
        assert spawn_seeds(1, 3) != spawn_seeds(2, 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_zero_count(self):
        assert spawn_seeds(0, 0) == []


class TestAsMatrix:
    def test_promotes_vector_to_row(self):
        result = as_matrix(np.ones(4))
        assert result.shape == (1, 4)
        assert result.dtype == np.float32

    def test_enforces_dim(self):
        with pytest.raises(ValueError, match="dimension"):
            as_matrix(np.ones((3, 4)), dim=5)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            as_matrix(np.ones((2, 2, 2)))

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            as_matrix(np.ones((3, 0)))

    def test_makes_contiguous(self):
        strided = np.ones((4, 8), dtype=np.float32)[:, ::2]
        assert as_matrix(strided).flags.c_contiguous

    def test_casts_dtype(self):
        assert as_matrix(np.ones((2, 2), dtype=np.float64)).dtype == np.float32


class TestAsVector:
    def test_accepts_single_row_matrix(self):
        assert as_vector(np.ones((1, 5))).shape == (5,)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_vector(np.ones((2, 5)))

    def test_enforces_dim(self):
        with pytest.raises(ValueError):
            as_vector(np.ones(5), dim=4)


class TestChecks:
    def test_check_positive(self):
        check_positive(1, "x")
        with pytest.raises(ValueError, match="x"):
            check_positive(0, "x")

    def test_check_probability(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")
