"""Tests for the hyperplane-tree segmenters (routing + spill mechanics)."""

import numpy as np
import pytest

from repro.errors import SegmenterNotFittedError
from repro.segmenters.base import segmenter_from_dict
from repro.segmenters.rh import RandomHyperplaneSegmenter
from tests.conftest import make_clustered


@pytest.fixture(scope="module")
def data():
    return make_clustered(800, 12, seed=3)


def fitted(num_segments, *, alpha=0.15, spill_mode="virtual", seed=0, data=None):
    segmenter = RandomHyperplaneSegmenter(
        num_segments, alpha=alpha, spill_mode=spill_mode, seed=seed
    )
    return segmenter.fit(data)


class TestConstruction:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError, match="power of two"):
            RandomHyperplaneSegmenter(6)

    def test_alpha_range(self):
        with pytest.raises(ValueError, match="alpha"):
            RandomHyperplaneSegmenter(4, alpha=0.5)
        with pytest.raises(ValueError, match="alpha"):
            RandomHyperplaneSegmenter(4, alpha=-0.01)

    def test_spill_mode_validated(self):
        with pytest.raises(ValueError, match="spill_mode"):
            RandomHyperplaneSegmenter(4, spill_mode="both")

    def test_depth(self):
        assert RandomHyperplaneSegmenter(1).depth == 0
        assert RandomHyperplaneSegmenter(2).depth == 1
        assert RandomHyperplaneSegmenter(8).depth == 3

    def test_unfitted_routing_rejected(self, data):
        segmenter = RandomHyperplaneSegmenter(4)
        assert not segmenter.is_fitted
        with pytest.raises(SegmenterNotFittedError):
            segmenter.route_data_batch(data)

    def test_fit_requires_enough_points(self):
        with pytest.raises(ValueError, match="training points"):
            RandomHyperplaneSegmenter(8).fit(np.ones((4, 3), dtype=np.float32))

    def test_single_segment_tree_is_trivially_fitted(self, data):
        segmenter = RandomHyperplaneSegmenter(1).fit(data)
        assert segmenter.route_data_batch(data[:5]) == [(0,)] * 5
        assert segmenter.route_query_batch(data[:5]) == [(0,)] * 5


class TestDataRouting:
    def test_virtual_spill_routes_data_to_one_segment(self, data):
        segmenter = fitted(8, data=data)
        routes = segmenter.route_data_batch(data)
        assert all(len(route) == 1 for route in routes)

    def test_median_split_balances_segments(self, data):
        segmenter = fitted(4, data=data)
        counts = np.zeros(4, dtype=int)
        for route in segmenter.route_data_batch(data):
            counts[route[0]] += 1
        # Median splits on the training data itself: near-perfect balance.
        assert counts.min() >= 0.6 * counts.max()

    def test_physical_spill_duplicates_boundary_points(self, data):
        alpha = 0.15
        virtual = fitted(2, alpha=alpha, data=data)
        physical = fitted(2, alpha=alpha, spill_mode="physical", data=data)
        virtual_total = sum(len(r) for r in virtual.route_data_batch(data))
        physical_total = sum(len(r) for r in physical.route_data_batch(data))
        assert virtual_total == len(data)
        # One level at alpha=0.15 duplicates ~30% of the data.
        duplication = physical_total / len(data) - 1.0
        assert 0.15 <= duplication <= 0.45

    def test_zero_alpha_means_no_duplication(self, data):
        physical = fitted(4, alpha=0.0, spill_mode="physical", data=data)
        routes = physical.route_data_batch(data)
        assert sum(len(r) for r in routes) <= len(data) * 1.02


class TestQueryRouting:
    def test_virtual_spill_fans_out_boundary_queries(self, data):
        segmenter = fitted(2, alpha=0.15, data=data)
        routes = segmenter.route_query_batch(data)
        fanout = np.array([len(route) for route in routes])
        spilled_fraction = (fanout == 2).mean()
        # ~2*alpha = 30% of in-distribution queries straddle the boundary.
        assert 0.2 <= spilled_fraction <= 0.42

    def test_physical_spill_queries_probe_one_segment(self, data):
        segmenter = fitted(8, spill_mode="physical", data=data)
        routes = segmenter.route_query_batch(data)
        assert all(len(route) == 1 for route in routes)

    def test_fanout_bounded_by_2_to_depth(self, data):
        segmenter = fitted(8, alpha=0.3, data=data)
        routes = segmenter.route_query_batch(data)
        assert all(1 <= len(route) <= 8 for route in routes)

    def test_point_and_its_query_route_consistently(self, data):
        """A stored point's query route must include its data segment."""
        segmenter = fitted(8, alpha=0.1, data=data)
        data_routes = segmenter.route_data_batch(data[:200])
        query_routes = segmenter.route_query_batch(data[:200])
        for data_route, query_route in zip(data_routes, query_routes):
            assert data_route[0] in query_route

    def test_routes_are_sorted_unique(self, data):
        segmenter = fitted(8, alpha=0.25, data=data)
        for route in segmenter.route_query_batch(data[:100]):
            assert list(route) == sorted(set(route))

    def test_dimension_mismatch_rejected(self, data):
        segmenter = fitted(4, data=data)
        with pytest.raises(ValueError):
            segmenter.route_query_batch(np.ones((3, 5), dtype=np.float32))


class TestLocality:
    def test_near_points_usually_share_a_segment(self, data):
        """The RH locality premise: tiny perturbations rarely cross splits."""
        segmenter = fitted(4, data=data)
        rng = np.random.default_rng(0)
        base = data[:300]
        nudged = base + rng.normal(scale=1e-4, size=base.shape).astype(
            np.float32
        )
        base_routes = segmenter.route_data_batch(base)
        nudged_routes = segmenter.route_data_batch(nudged)
        same = sum(
            a == b for a, b in zip(base_routes, nudged_routes)
        )
        assert same / len(base) > 0.97

    def test_far_points_split_by_first_hyperplane(self, data):
        """Antipodal points along the split direction land apart."""
        segmenter = fitted(2, alpha=0.0, data=data)
        node = segmenter._nodes[0]
        direction = node.hyperplane
        center = np.median(data @ direction)
        far_left = (direction * (center - 50.0)).astype(np.float32)
        far_right = (direction * (center + 50.0)).astype(np.float32)
        assert segmenter.route_data(far_left) != segmenter.route_data(
            far_right
        )


class TestSerialization:
    def test_roundtrip_routes_identically(self, data):
        segmenter = fitted(8, alpha=0.2, data=data)
        restored = segmenter_from_dict(segmenter.to_dict())
        assert restored.route_data_batch(data[:100]) == (
            segmenter.route_data_batch(data[:100])
        )
        assert restored.route_query_batch(data[:100]) == (
            segmenter.route_query_batch(data[:100])
        )

    def test_roundtrip_preserves_parameters(self, data):
        segmenter = fitted(4, alpha=0.05, spill_mode="physical", data=data)
        restored = segmenter_from_dict(segmenter.to_dict())
        assert restored.alpha == 0.05
        assert restored.spill_mode == "physical"
        assert restored.num_segments == 4
        assert restored.dim == data.shape[1]

    def test_unfitted_roundtrip(self):
        segmenter = RandomHyperplaneSegmenter(4)
        restored = segmenter_from_dict(segmenter.to_dict())
        assert not restored.is_fitted


class TestDeterminism:
    def test_same_seed_same_tree(self, data):
        a = fitted(8, seed=5, data=data)
        b = fitted(8, seed=5, data=data)
        assert a.route_data_batch(data[:50]) == b.route_data_batch(data[:50])

    def test_different_seed_different_tree(self, data):
        a = fitted(8, seed=5, data=data)
        b = fitted(8, seed=6, data=data)
        assert a.route_data_batch(data) != b.route_data_batch(data)

    def test_alpha_does_not_change_data_placement_virtual(self, data):
        """Key reuse property for the Table 7 sweep: under virtual spill,
        data placement depends only on the medians, not on alpha."""
        narrow = fitted(8, alpha=0.05, seed=4, data=data)
        wide = fitted(8, alpha=0.25, seed=4, data=data)
        assert narrow.route_data_batch(data) == wide.route_data_batch(data)
