"""Tests for the perShardTopK normal-approximation budget (Eq. 5-6)."""

import math

import pytest

from repro.core.topk import per_shard_top_k, probit


class TestProbit:
    def test_known_quantiles(self):
        assert probit(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert probit(0.5) == pytest.approx(0.0, abs=1e-9)
        assert probit(0.025) == pytest.approx(-1.959964, abs=1e-4)

    def test_domain(self):
        with pytest.raises(ValueError):
            probit(0.0)
        with pytest.raises(ValueError):
            probit(1.0)


class TestPerShardTopK:
    def test_single_shard_returns_full_topk(self):
        assert per_shard_top_k(100, 1) == 100

    def test_paper_like_setting(self):
        """S=20, topK=100, p=0.95: s'=0.05, z=1.96 =>
        cI = 0.05 + 1.96*sqrt(0.05*0.95/100) = 0.0927 -> ceil(9.27) = 10."""
        budget = per_shard_top_k(100, 20, 0.95)
        expected = math.ceil(
            (0.05 + 1.959964 * math.sqrt(0.05 * 0.95 / 100)) * 100
        )
        assert budget == expected == 10

    def test_never_exceeds_topk(self):
        for shards in (2, 3, 5, 50):
            for top_k in (1, 10, 1000):
                assert per_shard_top_k(top_k, shards) <= top_k

    def test_at_least_one(self):
        assert per_shard_top_k(1, 100) >= 1

    def test_more_shards_smaller_budget(self):
        budgets = [per_shard_top_k(200, shards) for shards in (2, 4, 8, 16, 32)]
        assert all(b1 >= b2 for b1, b2 in zip(budgets, budgets[1:]))

    def test_higher_confidence_larger_budget(self):
        low = per_shard_top_k(1000, 10, 0.80)
        high = per_shard_top_k(1000, 10, 0.999)
        assert high >= low

    def test_budget_covers_expected_share_plus_slack(self):
        """The budget must exceed the expected per-shard share topK/S."""
        for shards in (2, 5, 20):
            for top_k in (50, 100, 1000):
                assert per_shard_top_k(top_k, shards) > top_k / shards

    def test_paper_literal_quantile_is_smaller(self):
        """The literal (1 - p/2) reading yields z ~= 0.063, so a much
        smaller budget -- the ablation the docs discuss."""
        standard = per_shard_top_k(1000, 20, 0.95)
        literal = per_shard_top_k(1000, 20, 0.95, paper_literal=True)
        assert literal < standard

    def test_validation(self):
        with pytest.raises(ValueError):
            per_shard_top_k(0, 5)
        with pytest.raises(ValueError):
            per_shard_top_k(10, 0)
        with pytest.raises(ValueError):
            per_shard_top_k(10, 5, confidence=0.0)

    def test_union_of_budgets_can_cover_topk(self):
        """Sanity: S * perShardTopK >= topK, otherwise the merge could
        never return topK results even in the best case."""
        for shards in (2, 4, 8, 20, 32):
            budget = per_shard_top_k(100, shards, 0.95)
            assert shards * budget >= 100
