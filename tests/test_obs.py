"""Observability tests: metrics registry, tracing, search-cost accounting.

Three contracts pinned here:

- the registry is the single process-wide metrics surface (labelled
  counters/gauges/histograms, mergeable snapshots, Prometheus text);
- tracing is opt-in, deterministic under a seed, and produces the
  broker span tree (route/cache/queue_wait/fanout/shard_rpc/attempt/
  merge) with searcher spans spliced in;
- cost accounting is exact bookkeeping that never changes results:
  serving with ``collect_cost`` on and off is bit-identical.

``stats()`` schemas are snapshot-tested so a dashboard built against
one release does not silently lose fields in the next.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.obs.cost import FIELDS, SearchCost
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, get_registry
from repro.obs.tracing import SpanRecorder, Tracer, format_trace
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode
from repro.online.types import SearchRequest
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=2,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=6,
    )


@pytest.fixture(scope="module")
def index(clustered_data, config):
    return build_lanns_index(clustered_data, config=config)


def make_broker(index, config, **kwargs):
    searchers = [SearcherNode(0), SearcherNode(1)]
    for shard_id, searcher in enumerate(searchers):
        searcher.host("main", index.shards[shard_id])
    return Broker(searchers, config, **kwargs)


class TestMetricsRegistry:
    def test_counter_labels_and_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests", "help!")
        counter.inc(shard=0)
        counter.inc(2, shard=0)
        counter.inc(shard=1)
        assert counter.value(shard=0) == 3
        assert counter.value(shard=1) == 1
        assert counter.value(shard=9) == 0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5.0, node="a")
        gauge.add(-2.0, node="a")
        assert gauge.value(node="a") == 3.0

    def test_histogram_observe(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(0.001)
        histogram.observe(0.2)
        series = histogram.value()
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(0.201)
        assert sum(series["counts"]) == 2

    def test_reregistration_is_idempotent_same_kind_only(self):
        registry = MetricsRegistry()
        counter = registry.counter("x", "first help")
        assert registry.counter("x") is counter
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_merge_adds_counters(self):
        worker_a, worker_b = MetricsRegistry(), MetricsRegistry()
        worker_a.counter("queries").inc(3, shard=0)
        worker_b.counter("queries").inc(4, shard=0)
        worker_b.counter("queries").inc(1, shard=1)
        fleet = MetricsRegistry()
        fleet.merge_snapshot(worker_a.snapshot())
        fleet.merge_snapshot(worker_b.snapshot())
        merged = fleet.counter("queries")
        assert merged.value(shard=0) == 7
        assert merged.value(shard=1) == 1

    def test_snapshot_merge_adds_histogram_buckets(self):
        worker_a, worker_b = MetricsRegistry(), MetricsRegistry()
        worker_a.histogram("lat").observe(0.01)
        worker_b.histogram("lat").observe(0.02)
        fleet = MetricsRegistry()
        fleet.merge_snapshot(worker_a.snapshot())
        fleet.merge_snapshot(worker_b.snapshot())
        series = fleet.histogram("lat").value()
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(0.03)

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(label="v")
        registry.histogram("h").observe(0.5)
        json.dumps(registry.snapshot())

    def test_render_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("reqs", "Requests served.").inc(5, shard=1)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_text()
        assert "# HELP reqs Requests served." in text
        assert "# TYPE reqs counter" in text
        assert 'reqs{shard="1"} 5' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_process_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestSearchCost:
    def test_starts_at_zero(self):
        assert SearchCost().as_dict() == {field: 0 for field in FIELDS}

    def test_merge_and_round_trip(self):
        cost = SearchCost()
        cost.hops = 3
        cost.distance_comps = 10
        other = SearchCost()
        other.hops = 2
        other.rescore_rows = 7
        cost.merge(other).merge(None).merge({"hops": 1})
        assert cost.hops == 6
        assert cost.distance_comps == 10
        assert cost.rescore_rows == 7
        assert SearchCost.from_dict(cost.as_dict()) == cost


class TestTracer:
    def test_sampling_off_starts_nothing(self):
        tracer = Tracer(0.0)
        assert not tracer.enabled
        assert tracer.begin() is None

    def test_sampling_on_keeps_traces(self):
        tracer = Tracer(1.0)
        trace = tracer.begin()
        assert trace is not None and trace.sampled
        with trace.span("work"):
            pass
        assert tracer.finish(trace, duration_s=0.01)
        (kept,) = tracer.traces()
        assert kept.trace_id == trace.trace_id
        exported = tracer.export()
        assert exported[0]["spans"][0]["name"] == "work"

    def test_seeded_sampling_is_deterministic(self):
        decisions = [
            [Tracer(0.5, seed=42).begin() is not None for _ in range(1)][0]
            for _ in range(3)
        ]
        assert len(set(decisions)) == 1

    def test_slow_query_log_force_keeps(self):
        tracer = Tracer(0.0, slow_query_threshold_s=0.005)
        trace = tracer.begin()
        assert trace is not None  # tentative: armed by the slow log
        assert not tracer.finish(trace, duration_s=0.001)  # fast: dropped
        slow = tracer.begin()
        assert tracer.finish(slow, duration_s=0.5)
        assert tracer.stats()["slow_queries"] == 1
        assert [t.trace_id for t in tracer.slow()] == [slow.trace_id]

    def test_capacity_bounds_kept_traces(self):
        tracer = Tracer(1.0, capacity=2)
        for _ in range(5):
            tracer.finish(tracer.begin(), duration_s=0.0)
        assert len(tracer.traces()) == 2
        assert tracer.stats()["started"] == 5

    def test_recorder_nesting_and_remote_splice(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner", detail=1):
                pass
        (outer,) = recorder.export()
        assert outer["name"] == "outer"
        assert outer["children"][0]["name"] == "inner"
        assert outer["children"][0]["annotations"] == {"detail": 1}
        remote = SpanRecorder()
        with remote.span("decode"):
            pass
        recorder.attach_remote(outer, remote.export())
        names = [child["name"] for child in outer["children"]]
        assert names == ["inner", "decode"]
        spliced = outer["children"][-1]
        assert spliced["start_ms"] >= outer["start_ms"]

    def test_format_trace_renders_tree(self):
        tracer = Tracer(1.0)
        trace = tracer.begin()
        with trace.span("fanout", groups=2):
            with trace.span("shard_rpc", shard=0):
                pass
        tracer.finish(trace, duration_s=0.01)
        text = format_trace(tracer.export()[0])
        assert "fanout" in text
        assert "shard_rpc" in text
        assert trace.trace_id in text


def _flatten(spans):
    for span in spans:
        yield span
        yield from _flatten(span.get("children", ()))


class TestBrokerObservability:
    def test_stats_schema_snapshot(self, index, config):
        broker = make_broker(index, config)
        stats = broker.stats()
        assert set(stats) == {
            "cache",
            "microbatch",
            "stages",
            "fanout_workers",
            "async_fanout",
            "hedge_after_s",
            "hedges",
            "hedge_wins",
            "failovers",
            "queries_served",
            "collect_cost",
            "tracer",
            "replicas",
            "partial",
            "fleet_queries_served",
        }
        assert set(stats["tracer"]) == {
            "sample_rate",
            "slow_query_threshold_s",
            "started",
            "kept",
            "slow_queries",
        }
        assert set(stats["partial"]) == {
            "policy",
            "request_timeout_s",
            "degraded_batches",
            "shard_failures",
        }

    def test_searcher_stats_schema_snapshot(self, index):
        searcher = SearcherNode(0)
        searcher.host("main", index.shards[0])
        assert set(searcher.stats()) == {
            "shard_id",
            "hosted_indices",
            "requests_served",
            "queries_served",
            "memory_vectors",
        }

    def test_cost_accounting_without_changing_results(
        self, index, config, clustered_queries
    ):
        counted = make_broker(index, config, collect_cost=True)
        plain = make_broker(index, config, collect_cost=False)
        request = SearchRequest(
            queries=clustered_queries[:8], top_k=10, index_name="main"
        )
        with_cost = counted.execute(request)
        without = plain.execute(request)
        np.testing.assert_array_equal(with_cost.ids, without.ids)
        np.testing.assert_array_equal(with_cost.dists, without.dists)
        assert without.cost is None
        assert with_cost.cost is not None
        assert set(with_cost.cost) == set(FIELDS)
        assert with_cost.cost["distance_comps"] > 0
        assert with_cost.cost["hops"] > 0
        assert with_cost.cost["segments_probed"] > 0
        assert with_cost.info()["cost"] == with_cost.cost

    def test_traced_request_builds_span_tree(
        self, index, config, clustered_queries
    ):
        broker = make_broker(
            index, config, trace_sample_rate=1.0, trace_seed=0
        )
        response = broker.execute(
            SearchRequest(
                queries=clustered_queries[:4], top_k=5, index_name="main"
            )
        )
        trace = response.trace
        assert trace is not None
        assert trace["sampled"]
        assert trace["duration_ms"] > 0
        top_level = [span["name"] for span in trace["spans"]]
        assert "fanout" in top_level
        assert "merge" in top_level
        names = [span["name"] for span in _flatten(trace["spans"])]
        assert names.count("shard_rpc") == config.num_shards
        attempts = [
            span
            for span in _flatten(trace["spans"])
            if span["name"] == "attempt"
        ]
        assert len(attempts) == config.num_shards
        for attempt in attempts:
            assert attempt["annotations"]["outcome"] == "ok"
            assert attempt["annotations"]["win"] is True
        # The searcher-side spans are spliced under the winning attempt.
        assert "beam" in names
        (kept,) = broker.tracer.traces()
        assert kept.to_dict()["trace_id"] == trace["trace_id"]

    def test_tracing_off_attaches_nothing(
        self, index, config, clustered_queries
    ):
        broker = make_broker(index, config)
        response = broker.execute(
            SearchRequest(
                queries=clustered_queries[:4], top_k=5, index_name="main"
            )
        )
        assert response.trace is None

    def test_traced_results_match_untraced(
        self, index, config, clustered_queries
    ):
        traced = make_broker(index, config, trace_sample_rate=1.0)
        plain = make_broker(index, config, trace_sample_rate=0.0)
        request = SearchRequest(
            queries=clustered_queries[:8], top_k=10, index_name="main"
        )
        np.testing.assert_array_equal(
            traced.execute(request).ids, plain.execute(request).ids
        )
