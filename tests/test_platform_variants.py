"""Platform variant tests: metric / spill / scale combinations that the
focused module tests don't cross.

These exist because the paper's platform promises *composability*: any
metric x segmenter x spill-mode combination must survive the full
build -> persist -> query -> serve cycle, not just the defaults.
"""

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.data.datasets import load_dataset, scale_factor
from repro.offline.brute_force import exact_top_k
from repro.offline.indexing import build_index_job
from repro.offline.querying import query_index_job
from repro.offline.recall import recall_at_k
from repro.online.service import OnlineService
from repro.storage.manifest import save_lanns_index
from tests.conftest import FAST_HNSW, make_clustered


class TestCosineEndToEnd:
    @pytest.fixture(scope="class")
    def cosine_setup(self):
        data = make_clustered(500, 16, seed=61)
        # In-distribution queries: perturbed base points (a segmenter can
        # only route queries drawn from the distribution it was fit on).
        rng = np.random.default_rng(62)
        rows = rng.integers(0, 500, size=30)
        queries = (
            data[rows] + rng.normal(scale=0.2, size=(30, 16))
        ).astype(np.float32)
        truth, _ = exact_top_k(data, queries, 10, metric="cosine")
        return data, queries, truth

    def test_offline_pipeline_cosine(self, cosine_setup, cluster, fs):
        data, queries, truth = cosine_setup
        config = LannsConfig(
            num_shards=2,
            num_segments=2,
            segmenter="rh",
            metric="cosine",
            hnsw=FAST_HNSW,
            segmenter_sample_size=500,
            seed=3,
        )
        build_index_job(cluster, fs, data, config, "idx-cos")
        result = query_index_job(
            cluster, fs, "idx-cos", queries, top_k=10, ef=64,
            checkpoint=False,
        )
        assert recall_at_k(result.ids, truth, 10) >= 0.75

    def test_online_serving_cosine(self, cosine_setup, fs):
        data, queries, truth = cosine_setup
        config = LannsConfig(
            num_shards=1,
            num_segments=2,
            segmenter="apd",
            metric="cosine",
            hnsw=FAST_HNSW,
            segmenter_sample_size=500,
            seed=4,
        )
        index = build_lanns_index(data, config=config)
        save_lanns_index(index, fs, "prod/cos")
        service = OnlineService()
        service.deploy(fs, "prod/cos")
        ids = np.full((len(queries), 10), -1, dtype=np.int64)
        for row, query in enumerate(queries):
            found, dists = service.query(query, 10, ef=64)
            ids[row, : len(found)] = found
            # Cosine distances live in [0, 2].
            assert (dists >= -1e-6).all() and (dists <= 2.0 + 1e-6).all()
        assert recall_at_k(ids, truth, 10) >= 0.75


class TestPhysicalSpillThroughPipelines:
    def test_persisted_physical_spill_index(self, cluster, fs, clustered_data, clustered_queries, clustered_truth):
        config = LannsConfig(
            num_shards=2,
            num_segments=2,
            segmenter="rh",
            spill_mode="physical",
            alpha=0.2,
            hnsw=FAST_HNSW,
            segmenter_sample_size=600,
            seed=5,
        )
        manifest, _ = build_index_job(
            cluster, fs, clustered_data, config, "idx-phys"
        )
        # Physical spill stores boundary duplicates.
        assert manifest.total_vectors > len(clustered_data)
        result = query_index_job(
            cluster, fs, "idx-phys", clustered_queries, top_k=10, ef=64,
            checkpoint=False,
        )
        # Duplicates must have been deduped in the merge.
        for row in range(result.ids.shape[0]):
            valid = result.ids[row][result.ids[row] >= 0]
            assert len(set(valid.tolist())) == len(valid)
        assert recall_at_k(result.ids, clustered_truth, 10) >= 0.8


class TestInnerProductEndToEnd:
    def test_lanns_inner_product(self, clustered_data):
        config = LannsConfig(
            num_shards=1,
            num_segments=2,
            segmenter="rs",
            metric="inner_product",
            hnsw=FAST_HNSW,
            seed=6,
        )
        index = build_lanns_index(clustered_data, config=config)
        queries = clustered_data[:15]
        truth, _ = exact_top_k(
            clustered_data, queries, 5, metric="inner_product"
        )
        hits = 0
        for row, query in enumerate(queries):
            ids, _ = index.query(query, 5, ef=64)
            hits += len(set(ids.tolist()) & set(truth[row].tolist()))
        assert hits / (15 * 5) >= 0.85


class TestScaleFactor:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_invalid_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scale_factor()

    def test_scaled_dataset_sizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        small = load_dataset("people")
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        bigger = load_dataset("people")
        assert bigger.num_base > small.num_base


class TestSingleShardSingleSegment:
    def test_degenerate_partitioning_equals_hnsw(self, clustered_data, clustered_queries):
        """(1,1)-partitioning must behave exactly like plain HNSW."""
        from repro.hnsw.index import build_hnsw
        from repro.hnsw.params import HnswParams

        config = LannsConfig(num_shards=1, num_segments=1, hnsw=FAST_HNSW)
        lanns = build_lanns_index(clustered_data, config=config)
        # The builder derives a per-segment seed, so compare against an
        # HNSW built with that same seed.
        seed = lanns.shards[0].segments[0].params.seed
        params = HnswParams(**{**FAST_HNSW.to_dict(), "seed": seed})
        plain = build_hnsw(clustered_data, params=params)
        for query in clustered_queries[:10]:
            lanns_ids, _ = lanns.query(query, 10, ef=48)
            plain_ids, _ = plain.search(query, 10, ef=48)
            np.testing.assert_array_equal(lanns_ids, plain_ids)
