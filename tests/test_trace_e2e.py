"""End-to-end tracing over real subprocess searchers (the PR's demo).

A routed + hedged remote request against a segment-aligned, quantized
index must come back with ONE trace whose span tree covers both sides
of the wire:

- broker side: ``route`` -> ``fanout`` (one ``shard_rpc`` per queried
  group, hedge attempts as ``attempt`` children with win/loss
  annotations) -> ``merge``;
- searcher side: ``decode`` -> ``descend`` -> ``beam`` -> ``rescore``
  -> spliced under the attempt that won, rebased onto the broker's
  clock.

The straggler is injected on shard 1 (``slow_every=2``: every second
SEARCH frame stalls), so the hedged request deterministically spawns a
hedge attempt; the winner is timing-dependent, so the assertions pin
the *structure* (a hedge child exists; exactly one attempt per group
wins) rather than who won.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.hnsw.params import HnswParams
from repro.net.fleet import fleet_addresses, launch_fleet, shutdown_fleet
from repro.online.service import OnlineService
from repro.online.types import SearchRequest
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index
from tests.conftest import make_clustered

NUM_SHARDS = 2
INDEX_PATH = "prod/traced"
SLOW_SHARD = 1
SLOW_DELAY_S = 0.4


def _flatten(spans):
    for span in spans:
        yield span
        yield from _flatten(span.get("children", ()))


@pytest.fixture(scope="module")
def shared_fs(tmp_path_factory):
    return LocalHdfs(tmp_path_factory.mktemp("trace-hdfs"))


@pytest.fixture(scope="module")
def index(shared_fs):
    # Segment-aligned (router can prune fan-out) and int8-quantized (the
    # searcher runs a rescore stage, so the remote trace shows one).
    config = LannsConfig(
        num_shards=NUM_SHARDS,
        num_segments=NUM_SHARDS,
        sharding="segment",
        segmenter="rh",
        hnsw=HnswParams(
            M=8, ef_construction=48, ef_search=48, seed=0, quantize="int8"
        ),
        segmenter_sample_size=600,
        seed=33,
    )
    built = build_lanns_index(make_clustered(600, 16, seed=31), config=config)
    save_lanns_index(built, shared_fs, INDEX_PATH)
    return built


@pytest.fixture(scope="module")
def queries(index):
    rng = np.random.default_rng(34)
    return rng.normal(scale=3.0, size=(6, 16)).astype(np.float32)


class TestRemoteTraceEndToEnd:
    def test_routed_hedged_query_yields_one_cross_wire_trace(
        self, shared_fs, index, queries, tmp_path
    ):
        fleet = launch_fleet(
            NUM_SHARDS,
            root=str(shared_fs.root),
            slow_shard=SLOW_SHARD,
            slow_every=2,
            slow_delay_s=SLOW_DELAY_S,
            log_dir=tmp_path,
        )
        service = None
        try:
            service = OnlineService(
                searchers=fleet_addresses(fleet),
                async_fanout=True,
                hedge_after_s=0.05,
                request_timeout_s=30.0,
                cache_size=64,
                trace_sample_rate=1.0,
                trace_seed=0,
            )
            service.deploy(shared_fs, INDEX_PATH, index_name="traced")

            # Routed (spill = all segments, so the slow shard is in the
            # fan-out) and hedged: the paper's serving path, traced.
            response = service.execute(
                SearchRequest(
                    queries=queries,
                    top_k=5,
                    index_name="traced",
                    spill=NUM_SHARDS,
                )
            )
            trace = response.trace
            assert trace is not None
            assert trace["sampled"]

            top_level = [span["name"] for span in trace["spans"]]
            assert "route" in top_level
            assert "fanout" in top_level
            assert "merge" in top_level
            assert top_level.index("fanout") < top_level.index("merge")

            spans = list(_flatten(trace["spans"]))
            rpcs = [s for s in spans if s["name"] == "shard_rpc"]
            assert {s["annotations"]["shard"] for s in rpcs} == {0, 1}

            # Hedge structure: the slow shard's RPC carries two attempt
            # children, exactly one of which won.
            slow_rpc = next(
                s for s in rpcs if s["annotations"]["shard"] == SLOW_SHARD
            )
            attempts = [
                c for c in slow_rpc["children"] if c["name"] == "attempt"
            ]
            assert len(attempts) == 2
            assert any(a["annotations"]["hedge"] for a in attempts)
            assert sum(a["annotations"]["win"] for a in attempts) == 1
            for rpc in rpcs:
                winners = [
                    c
                    for c in rpc["children"]
                    if c["name"] == "attempt" and c["annotations"]["win"]
                ]
                assert len(winners) == 1

            # Searcher-side spans crossed the wire and were rebased
            # under the winning attempt: the remote clock never runs
            # ahead of the attempt that carried it.
            for rpc in rpcs:
                winner = next(
                    c
                    for c in rpc["children"]
                    if c["name"] == "attempt" and c["annotations"]["win"]
                )
                remote_names = [
                    s["name"] for s in _flatten(winner["children"])
                ]
                for stage in ("decode", "descend", "beam", "rescore"):
                    assert stage in remote_names, (
                        f"shard {rpc['annotations']['shard']} winning "
                        f"attempt is missing remote span {stage!r}"
                    )
                for child in winner["children"]:
                    assert child["start_ms"] >= winner["start_ms"] - 1e-6

            # Search cost crossed the wire alongside the results.
            assert response.cost is not None
            assert response.cost["rescore_rows"] > 0
            assert response.cost["distance_comps"] > 0

            # The slow-path request still answers correctly: parity with
            # an untraced, unhedged service over the same fleet.
            plain = OnlineService(
                searchers=fleet_addresses(fleet),
                async_fanout=True,
                request_timeout_s=30.0,
            )
            try:
                plain.deploy(shared_fs, INDEX_PATH, index_name="plain")
                want = plain.execute(
                    SearchRequest(
                        queries=queries,
                        top_k=5,
                        index_name="plain",
                        spill=NUM_SHARDS,
                    )
                )
                np.testing.assert_array_equal(response.ids, want.ids)
                np.testing.assert_array_equal(response.dists, want.dists)
            finally:
                plain.close()

            # Unrouted traced request: the admission-layer spans appear.
            unrouted = service.execute(
                SearchRequest(queries=queries, top_k=5, index_name="traced")
            )
            assert unrouted.trace is not None
            assert unrouted.trace["trace_id"] != trace["trace_id"]
            names = [span["name"] for span in unrouted.trace["spans"]]
            assert "queue_wait" in names
            assert "cache" in names
            assert "fanout" in names

            tracer_stats = service.stats()["indices"]["traced"]["tracer"]
            assert tracer_stats["started"] == 2
            assert tracer_stats["kept"] == 2
        finally:
            if service is not None:
                service.close()
            shutdown_fleet(fleet)
