"""Concurrency tests: the serving tier must be safe under parallel reads.

The paper's searcher fleet serves thousands of QPS; our in-process
reproduction must at least guarantee that concurrent searches on shared
structures (one HNSW index, one shard, one broker) return exactly what
sequential searches return -- the thread-local visited-table pool is the
piece doing the heavy lifting here.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.hnsw.index import build_hnsw
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def shared_hnsw(clustered_data):
    return build_hnsw(clustered_data, params=FAST_HNSW)


@pytest.fixture(scope="module")
def shared_lanns(clustered_data):
    config = LannsConfig(
        num_shards=2,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=8,
    )
    return build_lanns_index(clustered_data, config=config)


def parallel_map(fn, items, workers=8):
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


class TestHnswConcurrentSearch:
    def test_parallel_equals_sequential(self, shared_hnsw, clustered_queries):
        sequential = [
            shared_hnsw.search(query, 10, ef=48)[0].tolist()
            for query in clustered_queries
        ]
        parallel = parallel_map(
            lambda query: shared_hnsw.search(query, 10, ef=48)[0].tolist(),
            clustered_queries,
        )
        assert parallel == sequential

    def test_repeated_parallel_runs_are_stable(self, shared_hnsw, clustered_queries):
        def run_once():
            return parallel_map(
                lambda q: shared_hnsw.search(q, 5, ef=32)[0].tolist(),
                clustered_queries[:20],
            )

        assert run_once() == run_once()


class TestLannsConcurrentQuery:
    def test_parallel_equals_sequential(self, shared_lanns, clustered_queries):
        sequential = [
            shared_lanns.query(query, 10, ef=48)[0].tolist()
            for query in clustered_queries
        ]
        parallel = parallel_map(
            lambda query: shared_lanns.query(query, 10, ef=48)[0].tolist(),
            clustered_queries,
        )
        assert parallel == sequential


class TestBrokerConcurrentFanout:
    def test_concurrent_brokers_on_shared_searchers(
        self, shared_lanns, clustered_queries
    ):
        searchers = [SearcherNode(0), SearcherNode(1)]
        for shard_id, searcher in enumerate(searchers):
            searcher.host("main", shared_lanns.shards[shard_id])
        broker = Broker(searchers, shared_lanns.config, parallel_fanout=True)
        sequential = [
            broker.query("main", query, 8, ef=48)[0].tolist()
            for query in clustered_queries[:25]
        ]
        parallel = parallel_map(
            lambda query: broker.query("main", query, 8, ef=48)[0].tolist(),
            clustered_queries[:25],
        )
        assert parallel == sequential
