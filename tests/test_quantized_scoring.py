"""Quantized beam search + exact rescore, and the PQ codec fixes.

Covers the compressed-domain scoring tier end to end: codec round
trips, the not-fitted error contract, wire-boundary bit-parity of the
quantized-then-rescored path against the float path, the batch-of-one
invariance the serving stack relies on, recall floors for both
backends, and persistence through the manifest layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pq import PqIndex, ProductQuantizer
from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.data import clustered_gaussians
from repro.distance.scorer import (
    QUANTIZE_KINDS,
    Int8Codec,
    PqAdcCodec,
    QuantizedStore,
    Scorer,
    pq_subspaces_for,
)
from repro.errors import CodecNotFittedError
from repro.hnsw.index import HnswIndex, build_hnsw
from repro.hnsw.params import HnswParams
from repro.offline.brute_force import exact_top_k
from repro.offline.recall import recall_at_k
from repro.online.service import OnlineService
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import (
    load_lanns_index,
    load_manifest,
    save_lanns_index,
)


def _corpus(n=1500, dim=24, seed=0):
    return clustered_gaussians(n, dim, num_clusters=8, seed=seed)


# -- satellite: ProductQuantizer fixes ------------------------------------------------


class TestProductQuantizerFixes:
    def test_clamped_fit_updates_num_codes(self):
        data = _corpus(n=10, dim=8)
        quantizer = ProductQuantizer(2, 256, seed=0).fit(data)
        assert quantizer.num_codes == 10
        assert quantizer.codebooks.shape[1] == quantizer.num_codes

    def test_clamped_fit_round_trips(self):
        data = _corpus(n=10, dim=8)
        quantizer = ProductQuantizer(2, 256, seed=0).fit(data)
        restored = ProductQuantizer.from_dict(quantizer.to_dict())
        assert restored.num_codes == quantizer.num_codes
        np.testing.assert_array_equal(
            restored.codebooks, quantizer.codebooks
        )
        np.testing.assert_array_equal(
            restored.encode(data), quantizer.encode(data)
        )

    def test_from_dict_rejects_inconsistent_num_codes(self):
        data = _corpus(n=32, dim=8)
        payload = ProductQuantizer(2, 16, seed=0).fit(data).to_dict()
        payload["num_codes"] = 99
        with pytest.raises(ValueError, match="num_codes"):
            ProductQuantizer.from_dict(payload)

    @pytest.mark.parametrize("method", ["encode", "decode", "adc_table"])
    def test_unfitted_quantizer_raises_clear_error(self, method):
        quantizer = ProductQuantizer(2, 16)
        argument = (
            np.zeros((3, 2), dtype=np.uint16)
            if method == "decode"
            else np.zeros(8 if method == "adc_table" else (3, 8))
        )
        with pytest.raises(CodecNotFittedError, match="fit"):
            getattr(quantizer, method)(argument)

    def test_is_fitted_flag(self):
        quantizer = ProductQuantizer(2, 16)
        assert not quantizer.is_fitted
        quantizer.fit(_corpus(n=64, dim=8))
        assert quantizer.is_fitted

    def test_pq_index_no_rerank_distances_are_sorted(self):
        data = _corpus(n=400, dim=16, seed=3)
        index = PqIndex(4, 16, rerank=0, seed=0)
        index.fit(data)
        for query in _corpus(n=8, dim=16, seed=4):
            ids, dists = index.search(query, 10)
            assert np.all(np.diff(dists) >= 0.0)
            # The distances really are exact for the returned ids.
            exact = np.sqrt(
                ((data[ids].astype(np.float64) - query) ** 2).sum(axis=1)
            )
            np.testing.assert_allclose(dists, exact)


# -- satellite: score_ids query_sq --------------------------------------------------


class TestScoreIdsQuerySq:
    @pytest.mark.parametrize(
        "metric", ["euclidean", "cosine", "inner_product"]
    )
    def test_precomputed_norm_is_bit_identical(self, metric):
        data = _corpus(n=200, dim=12)
        scorer = Scorer(metric, 12)
        scorer.add(data)
        query = scorer.prepare_query(_corpus(n=1, dim=12, seed=9)[0])
        ids = np.arange(0, 200, 3, dtype=np.int64)
        baseline = scorer.score_ids(query, ids)
        threaded = scorer.score_ids(query, ids, float(query @ query))
        np.testing.assert_array_equal(baseline, threaded)


# -- codecs -------------------------------------------------------------------------


class TestInt8Codec:
    def test_round_trip_error_is_bounded_by_step(self):
        data = _corpus(n=500, dim=16)
        codec = Int8Codec().fit(data)
        decoded = codec.decode(codec.encode(data))
        # Affine scalar quantization is exact to half a step per dim.
        assert np.all(np.abs(decoded - data) <= codec.scale * 0.5 + 1e-6)

    def test_constant_dimension_is_exact(self):
        data = _corpus(n=100, dim=8)
        data[:, 3] = 2.5
        codec = Int8Codec().fit(data)
        decoded = codec.decode(codec.encode(data))
        np.testing.assert_allclose(decoded[:, 3], 2.5, atol=1e-6)

    def test_unfitted_raises(self):
        with pytest.raises(CodecNotFittedError, match="fit"):
            Int8Codec().encode(_corpus(n=4, dim=8))
        with pytest.raises(CodecNotFittedError, match="fit"):
            Int8Codec().decode(np.zeros((4, 8), dtype=np.int8))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Int8Codec().fit(np.empty((0, 8), dtype=np.float32))

    def test_array_round_trip(self):
        data = _corpus(n=100, dim=8)
        codec = Int8Codec().fit(data)
        restored = Int8Codec.from_arrays(codec.to_arrays())
        np.testing.assert_array_equal(
            restored.encode(data), codec.encode(data)
        )


class TestPqAdcCodec:
    def test_subspace_divisor_fallback(self):
        assert pq_subspaces_for(24, 8) == 8
        assert pq_subspaces_for(25, 8) == 5
        assert pq_subspaces_for(23, 8) == 1
        assert pq_subspaces_for(4, 8) == 4

    def test_awkward_dim_fits(self):
        data = _corpus(n=300, dim=25)
        codec = PqAdcCodec(8, seed=0).fit(data)
        assert codec.num_subspaces == 5
        assert codec.encode(data).shape == (300, 5)

    def test_unfitted_raises(self):
        with pytest.raises(CodecNotFittedError, match="fit"):
            PqAdcCodec(4).encode(_corpus(n=4, dim=8))

    def test_array_round_trip(self):
        data = _corpus(n=300, dim=16)
        codec = PqAdcCodec(4, seed=2).fit(data)
        restored = PqAdcCodec.from_arrays(codec.to_arrays())
        np.testing.assert_array_equal(
            restored.encode(data), codec.encode(data)
        )
        np.testing.assert_array_equal(
            restored.codebooks32, codec.codebooks32
        )


class TestQuantizedStore:
    def test_rejects_unknown_kind(self):
        scorer = Scorer("euclidean", 8)
        with pytest.raises(ValueError, match="int8"):
            QuantizedStore(scorer, "float16")

    def test_kinds_constant_matches_params_validation(self):
        assert QUANTIZE_KINDS == ("none", "int8", "pq")
        for kind in QUANTIZE_KINDS:
            HnswParams(quantize=kind)  # must validate
        with pytest.raises(ValueError, match="quantize"):
            HnswParams(quantize="float16")

    def test_refresh_covers_incremental_adds(self):
        scorer = Scorer("euclidean", 8)
        scorer.add(_corpus(n=50, dim=8))
        store = QuantizedStore(scorer, "int8")
        store.refresh()
        assert store.is_trained
        scorer.add(_corpus(n=30, dim=8, seed=5))
        assert not store.is_trained  # stale: codes cover 50 of 80 rows
        store.refresh()
        assert store.is_trained and store.count == 80

    def test_codes_are_four_times_smaller(self):
        scorer = Scorer("euclidean", 32)
        scorer.add(_corpus(n=400, dim=32))
        store = QuantizedStore(scorer, "int8")
        store.refresh()
        assert store.codes.nbytes * 4 == scorer.data.nbytes


# -- the tentpole: quantized beam + exact rescore ------------------------------------


def _parity_case(metric, kind):
    data = _corpus(n=2500, dim=24, seed=1)
    queries = _corpus(n=40, dim=24, seed=2)
    base = dict(seed=3, ef_search=60)
    float_index = build_hnsw(
        data, metric=metric, params=HnswParams(**base)
    )
    quant_index = build_hnsw(
        data,
        metric=metric,
        params=HnswParams(
            **base, quantize=kind, rescore_k=80, pq_subspaces=6
        ),
    )
    return data, queries, float_index, quant_index


class TestQuantizedSearchParity:
    @pytest.mark.parametrize("kind", ["int8", "pq"])
    @pytest.mark.parametrize(
        "metric", ["euclidean", "cosine", "inner_product"]
    )
    def test_rescored_distances_bit_identical_to_float_path(
        self, metric, kind
    ):
        """The wire contract: any id both paths return carries the exact

        same bits of distance -- the rescore runs the same
        batch-composition-invariant float32 kernel the float traversal
        scores with.
        """
        _, queries, float_index, quant_index = _parity_case(metric, kind)
        float_ids, float_dists = float_index.search_batch(queries, 10)
        quant_ids, quant_dists = quant_index.search_batch(queries, 10)
        compared = 0
        for fi, fd, qi, qd in zip(
            float_ids, float_dists, quant_ids, quant_dists
        ):
            quant_map = dict(zip(qi.tolist(), qd.tolist()))
            for candidate, distance in zip(fi.tolist(), fd.tolist()):
                if candidate in quant_map:
                    assert quant_map[candidate] == distance
                    compared += 1
        # The overlap must be substantial for the parity check to mean
        # anything (recall floors are pinned separately below).
        assert compared >= 300

    @pytest.mark.parametrize("kind", ["int8", "pq"])
    def test_single_query_equals_batch_of_one(self, kind):
        _, queries, _, quant_index = _parity_case("euclidean", kind)
        batch_ids, batch_dists = quant_index.search_batch(queries, 10)
        for row in range(0, queries.shape[0], 7):
            ids, dists = quant_index.search(queries[row], 10)
            np.testing.assert_array_equal(ids, batch_ids[row])
            np.testing.assert_array_equal(dists, batch_dists[row])

    @pytest.mark.parametrize("kind", ["int8", "pq"])
    def test_returned_distances_are_exact(self, kind):
        data, queries, _, quant_index = _parity_case("euclidean", kind)
        ids, dists = quant_index.search_batch(queries, 10)
        for row in range(queries.shape[0]):
            exact = np.sqrt(
                (
                    (
                        data[ids[row]].astype(np.float64)
                        - queries[row].astype(np.float64)
                    )
                    ** 2
                ).sum(axis=1)
            )
            np.testing.assert_allclose(dists[row], exact, rtol=1e-5)
            assert np.all(np.diff(dists[row]) >= 0.0)

    @pytest.mark.parametrize("kind", ["int8", "pq"])
    def test_recall_floor_vs_exact_ground_truth(self, kind):
        data = _corpus(n=3000, dim=24, seed=1)
        queries = _corpus(n=50, dim=24, seed=2)
        truth_ids, _ = exact_top_k(data, queries, 10)
        index = build_hnsw(
            data,
            params=HnswParams(
                seed=3, ef_search=80, quantize=kind, rescore_k=120
            ),
        )
        ids, _ = index.search_batch(queries, 10)
        recall = recall_at_k(ids, truth_ids, 10)
        # Clustered 24-d corpus at ef=80: the float path is ~1.0 here;
        # quantized-then-rescored must stay close.
        assert recall >= 0.92, f"{kind} recall@10 = {recall:.3f}"

    def test_rescore_k_deepens_the_beam(self):
        data = _corpus(n=3000, dim=24, seed=1)
        queries = _corpus(n=30, dim=24, seed=2)
        shallow = build_hnsw(
            data, params=HnswParams(seed=3, ef_search=12, quantize="pq")
        )
        deep = build_hnsw(
            data,
            params=HnswParams(
                seed=3, ef_search=12, quantize="pq", rescore_k=100
            ),
        )
        truth_ids, _ = exact_top_k(data, queries, 10)
        shallow_recall = recall_at_k(
            shallow.search_batch(queries, 10)[0], truth_ids, 10
        )
        deep_recall = recall_at_k(
            deep.search_batch(queries, 10)[0], truth_ids, 10
        )
        assert deep_recall > shallow_recall

    def test_quantize_none_is_todays_path(self):
        data = _corpus(n=1200, dim=16, seed=4)
        queries = _corpus(n=20, dim=16, seed=5)
        default = build_hnsw(data, params=HnswParams(seed=3))
        explicit = build_hnsw(
            data, params=HnswParams(seed=3, quantize="none")
        )
        a = default.search_batch(queries, 10)
        b = explicit.search_batch(queries, 10)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        assert explicit._quantized is None

    def test_incremental_add_retrains_codes(self):
        data = _corpus(n=1200, dim=16, seed=4)
        extra = _corpus(n=300, dim=16, seed=6)
        queries = _corpus(n=10, dim=16, seed=5)
        index = build_hnsw(
            data, params=HnswParams(seed=3, quantize="int8", rescore_k=40)
        )
        index.add(extra)
        assert index._quantized.count == 1500
        ids, dists = index.search_batch(queries, 10)
        assert np.all(ids >= 0) and np.all(np.isfinite(dists))


# -- persistence / serving ----------------------------------------------------------


class TestQuantizedPersistence:
    @pytest.mark.parametrize("kind", ["int8", "pq"])
    def test_segment_save_load_bit_identical(self, tmp_path, kind):
        data = _corpus(n=1200, dim=16, seed=4)
        queries = _corpus(n=15, dim=16, seed=5)
        index = build_hnsw(
            data,
            params=HnswParams(
                seed=3, quantize=kind, rescore_k=40, pq_subspaces=4
            ),
        )
        path = str(tmp_path / "segment.npz")
        index.save(path)
        loaded = HnswIndex.load(path)
        assert loaded.params.quantize == kind
        np.testing.assert_array_equal(
            loaded._quantized.codes, index._quantized.codes
        )
        a = index.search_batch(queries, 10)
        b = loaded.search_batch(queries, 10)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    @pytest.mark.parametrize("kind", ["none", "int8", "pq"])
    def test_manifest_records_quantize(self, tmp_path, kind):
        data = _corpus(n=900, dim=16, seed=4)
        config = LannsConfig(
            num_shards=2,
            num_segments=2,
            hnsw=HnswParams(quantize=kind, rescore_k=30),
            seed=5,
        )
        fs = LocalHdfs(str(tmp_path))
        index = build_lanns_index(data, config=config)
        manifest = save_lanns_index(index, fs, "idx")
        assert manifest.quantize == kind
        assert load_manifest(fs, "idx").quantize == kind
        assert manifest.lanns_config.quantize == kind

    @pytest.mark.parametrize("kind", ["int8", "pq"])
    def test_deployed_service_matches_direct_index(self, tmp_path, kind):
        data = _corpus(n=1500, dim=16, seed=4)
        queries = _corpus(n=20, dim=16, seed=5)
        config = LannsConfig(
            num_shards=2,
            num_segments=2,
            hnsw=HnswParams(quantize=kind, rescore_k=40),
            seed=5,
        )
        fs = LocalHdfs(str(tmp_path))
        index = build_lanns_index(data, config=config)
        save_lanns_index(index, fs, "idx")
        loaded = load_lanns_index(fs, "idx")
        a = index.query_batch(queries, 10)
        b = loaded.query_batch(queries, 10)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

        service = OnlineService()
        service.deploy(fs, "idx")
        ids, dists = service.query_batch(queries, 10)
        np.testing.assert_array_equal(ids, a[0])
        np.testing.assert_array_equal(dists, a[1])
        assert service.stats()["indices"]["default"]["quantize"] == kind
