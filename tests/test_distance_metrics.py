"""Tests for the distance metrics: exactness and metric properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.distance.metrics import (
    CosineDistance,
    EuclideanDistance,
    InnerProductDistance,
    available_metrics,
    get_metric,
)

finite_vectors = hnp.arrays(
    np.float32,
    st.integers(2, 8).map(lambda d: (d,)),
    elements=st.floats(-50, 50, allow_nan=False, width=32),
)


def random_matrix(rng, n, d):
    return rng.normal(size=(n, d)).astype(np.float32)


class TestRegistry:
    def test_available(self):
        assert available_metrics() == ["cosine", "euclidean", "inner_product"]

    def test_aliases(self):
        assert isinstance(get_metric("l2"), EuclideanDistance)
        assert isinstance(get_metric("ip"), InnerProductDistance)
        assert isinstance(get_metric("dot"), InnerProductDistance)

    def test_instance_passthrough(self):
        metric = EuclideanDistance()
        assert get_metric(metric) is metric

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("manhattan")


class TestEuclidean:
    def test_matches_norm(self):
        rng = np.random.default_rng(0)
        queries = random_matrix(rng, 5, 12)
        data = random_matrix(rng, 9, 12)
        expected = np.linalg.norm(
            queries[:, np.newaxis, :] - data[np.newaxis, :, :], axis=2
        )
        actual = EuclideanDistance().pairwise(queries, data)
        np.testing.assert_allclose(actual, expected, rtol=1e-4, atol=1e-4)

    def test_reduced_is_squared(self):
        metric = EuclideanDistance()
        x = np.array([[0.0, 0.0]], dtype=np.float32)
        y = np.array([[3.0, 4.0]], dtype=np.float32)
        assert metric.reduced_pairwise(x, y)[0, 0] == pytest.approx(25.0)
        assert metric.pairwise(x, y)[0, 0] == pytest.approx(5.0)

    def test_self_distance_zero(self):
        rng = np.random.default_rng(1)
        data = random_matrix(rng, 6, 8)
        diag = np.diag(EuclideanDistance().pairwise(data, data))
        np.testing.assert_allclose(diag, 0.0, atol=1e-2)

    @given(finite_vectors.flatmap(
        lambda x: st.tuples(
            st.just(x),
            hnp.arrays(np.float32, x.shape,
                       elements=st.floats(-50, 50, allow_nan=False, width=32)),
            hnp.arrays(np.float32, x.shape,
                       elements=st.floats(-50, 50, allow_nan=False, width=32)),
        )
    ))
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality_and_symmetry(self, triple):
        x, y, z = triple
        metric = EuclideanDistance()
        d_xy = metric.distance(x, y)
        d_yx = metric.distance(y, x)
        d_xz = metric.distance(x, z)
        d_zy = metric.distance(z, y)
        assert d_xy == pytest.approx(d_yx, rel=1e-4, abs=1e-3)
        assert d_xy <= d_xz + d_zy + 1e-2


class TestCosine:
    def test_range_and_orthogonality(self):
        metric = CosineDistance()
        x = np.array([[1.0, 0.0]], dtype=np.float32)
        y = np.array([[0.0, 2.0]], dtype=np.float32)
        assert metric.pairwise(x, y)[0, 0] == pytest.approx(1.0)
        assert metric.pairwise(x, x)[0, 0] == pytest.approx(0.0, abs=1e-6)
        opposite = np.array([[-3.0, 0.0]], dtype=np.float32)
        assert metric.pairwise(x, opposite)[0, 0] == pytest.approx(2.0)

    def test_scale_invariance(self):
        rng = np.random.default_rng(2)
        x = random_matrix(rng, 4, 6)
        y = random_matrix(rng, 5, 6)
        base = CosineDistance().pairwise(x, y)
        scaled = CosineDistance().pairwise(x * 7.5, y * 0.1)
        np.testing.assert_allclose(base, scaled, rtol=1e-4, atol=1e-5)

    def test_zero_vector_is_orthogonal_to_all(self):
        metric = CosineDistance()
        zero = np.zeros((1, 4), dtype=np.float32)
        other = np.ones((1, 4), dtype=np.float32)
        assert metric.pairwise(zero, other)[0, 0] == pytest.approx(1.0)


class TestInnerProduct:
    def test_negated_dot(self):
        metric = InnerProductDistance()
        x = np.array([[1.0, 2.0]], dtype=np.float32)
        y = np.array([[3.0, 4.0]], dtype=np.float32)
        assert metric.pairwise(x, y)[0, 0] == pytest.approx(-11.0)

    def test_larger_dot_means_smaller_distance(self):
        metric = InnerProductDistance()
        q = np.array([1.0, 0.0], dtype=np.float32)
        strong = np.array([[5.0, 0.0]], dtype=np.float32)
        weak = np.array([[1.0, 0.0]], dtype=np.float32)
        assert metric.batch(q, strong)[0] < metric.batch(q, weak)[0]


class TestRankingConsistency:
    @pytest.mark.parametrize("name", ["euclidean", "cosine", "inner_product"])
    def test_reduced_preserves_order(self, name):
        """Sorting by reduced distance == sorting by true distance."""
        rng = np.random.default_rng(3)
        metric = get_metric(name)
        query = rng.normal(size=10).astype(np.float32)
        data = random_matrix(rng, 50, 10)
        reduced = metric.reduced_batch(query, data)
        true = metric.batch(query, data)
        np.testing.assert_array_equal(np.argsort(reduced), np.argsort(true))
