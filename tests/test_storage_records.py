"""Tests for the Avro-like record file format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.storage.records import RecordSchema, read_records, write_records

FULL_SCHEMA = RecordSchema(
    [
        ("id", "int"),
        ("score", "float"),
        ("label", "str"),
        ("blob", "bytes"),
        ("embedding", "vector"),
    ]
)


def sample_records(n=3):
    rng = np.random.default_rng(0)
    return [
        {
            "id": int(index),
            "score": float(index) * 0.5,
            "label": f"item-{index}",
            "blob": bytes([index, index + 1]),
            "embedding": rng.normal(size=4).astype(np.float32),
        }
        for index in range(n)
    ]


class TestSchema:
    def test_duplicate_fields_rejected(self):
        with pytest.raises(SerializationError, match="duplicate"):
            RecordSchema([("a", "int"), ("a", "float")])

    def test_unknown_type_rejected(self):
        with pytest.raises(SerializationError, match="unknown type"):
            RecordSchema([("a", "uuid")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SerializationError):
            RecordSchema([])

    def test_json_roundtrip(self):
        assert RecordSchema.from_json(FULL_SCHEMA.to_json()) == FULL_SCHEMA


class TestRoundtrip:
    def test_all_types(self):
        records = sample_records()
        schema, decoded = read_records(write_records(FULL_SCHEMA, records))
        assert schema == FULL_SCHEMA
        assert len(decoded) == len(records)
        for original, restored in zip(records, decoded):
            assert restored["id"] == original["id"]
            assert restored["score"] == original["score"]
            assert restored["label"] == original["label"]
            assert restored["blob"] == original["blob"]
            np.testing.assert_array_equal(
                restored["embedding"], original["embedding"]
            )

    def test_empty_record_list(self):
        schema, decoded = read_records(write_records(FULL_SCHEMA, []))
        assert decoded == []

    def test_unicode_strings(self):
        schema = RecordSchema([("name", "str")])
        data = write_records(schema, [{"name": "ümläut-日本語"}])
        _, decoded = read_records(data)
        assert decoded[0]["name"] == "ümläut-日本語"

    def test_missing_field_rejected(self):
        schema = RecordSchema([("a", "int"), ("b", "int")])
        with pytest.raises(SerializationError, match="missing field"):
            write_records(schema, [{"a": 1}])

    def test_non_1d_vector_rejected(self):
        schema = RecordSchema([("v", "vector")])
        with pytest.raises(SerializationError, match="1-D"):
            write_records(schema, [{"v": np.ones((2, 2))}])


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(SerializationError, match="magic"):
            read_records(b"XXXX" + b"\x00" * 20)

    def test_truncated_payload(self):
        data = write_records(FULL_SCHEMA, sample_records())
        with pytest.raises(SerializationError, match="truncated"):
            read_records(data[:-5])

    def test_trailing_garbage(self):
        data = write_records(FULL_SCHEMA, sample_records())
        with pytest.raises(SerializationError, match="trailing"):
            read_records(data + b"junk")

    @given(
        st.lists(
            st.tuples(
                st.integers(-(2**62), 2**62),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, rows):
        schema = RecordSchema([("i", "int"), ("f", "float"), ("s", "str")])
        records = [{"i": i, "f": f, "s": s} for i, f, s in rows]
        _, decoded = read_records(write_records(schema, records))
        assert [
            (r["i"], r["f"], r["s"]) for r in decoded
        ] == rows
