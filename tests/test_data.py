"""Tests for the synthetic dataset recipes, registry and fvecs IO."""

import numpy as np
import pytest

from repro.data.datasets import available_datasets, load_dataset
from repro.data.io import read_fvecs, read_ivecs, write_fvecs, write_ivecs
from repro.data.synthetic import (
    clustered_gaussians,
    gist_like,
    groups_like,
    make_queries,
    neardupe_like,
    people_like,
    sift_like,
)
from repro.errors import SerializationError


class TestGenerators:
    def test_clustered_gaussians_shape_and_dtype(self):
        data = clustered_gaussians(100, 8, seed=0)
        assert data.shape == (100, 8)
        assert data.dtype == np.float32

    def test_deterministic(self):
        np.testing.assert_array_equal(
            clustered_gaussians(50, 4, seed=7), clustered_gaussians(50, 4, seed=7)
        )

    def test_seeds_differ(self):
        a = clustered_gaussians(50, 4, seed=1)
        b = clustered_gaussians(50, 4, seed=2)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_gaussians(0, 4)
        with pytest.raises(ValueError):
            clustered_gaussians(10, 0)
        with pytest.raises(ValueError):
            clustered_gaussians(10, 4, num_clusters=0)

    def test_sift_like_matches_paper_shape(self):
        data = sift_like(200, seed=0)
        assert data.shape[1] == 128  # paper dimensionality
        assert data.min() >= 0.0 and data.max() <= 255.0
        # Integer-valued like real SIFT descriptors.
        np.testing.assert_array_equal(data, np.round(data))

    def test_gist_like_matches_paper_shape(self):
        data = gist_like(50, seed=0)
        assert data.shape[1] == 960
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_groups_like_unit_norm(self):
        data = groups_like(50, seed=0)
        assert data.shape[1] == 256
        np.testing.assert_allclose(
            np.linalg.norm(data, axis=1), 1.0, rtol=1e-4
        )

    def test_people_like_dim(self):
        assert people_like(30, seed=0).shape[1] == 50

    def test_neardupe_contains_near_duplicates(self):
        data = neardupe_like(200, seed=0, duplicate_fraction=0.3)
        assert data.shape == (200, 2048)
        # Nearest-neighbor distances of duplicates are tiny compared to
        # the typical inter-point distance.
        sample = data[:80]
        dists = np.linalg.norm(
            sample[:, np.newaxis, :] - sample[np.newaxis, :, :], axis=2
        )
        np.fill_diagonal(dists, np.inf)
        nearest = dists.min(axis=1)
        median_scale = np.median(dists[np.isfinite(dists)])
        assert (nearest < 0.1 * median_scale).mean() > 0.15

    def test_neardupe_fraction_validation(self):
        with pytest.raises(ValueError):
            neardupe_like(10, duplicate_fraction=1.0)

    def test_make_queries_in_distribution(self):
        data = clustered_gaussians(300, 8, seed=3)
        queries = make_queries(data, 40, seed=4)
        assert queries.shape == (40, 8)
        # Queries should be near the data manifold: each has a base point
        # much closer than the dataset diameter.
        dists = np.linalg.norm(
            queries[:, np.newaxis, :] - data[np.newaxis, :, :], axis=2
        ).min(axis=1)
        assert dists.mean() < np.std(data) * 3

    def test_make_queries_validation(self):
        with pytest.raises(ValueError):
            make_queries(clustered_gaussians(10, 2), 0)


class TestRegistry:
    def test_names(self):
        assert available_datasets() == [
            "gist1m",
            "groups",
            "neardupe",
            "people",
            "pymk",
            "sift1m",
        ]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("laion")

    def test_load_scaled_down(self):
        dataset = load_dataset("sift1m", scale=0.01)
        assert dataset.dim == 128
        assert dataset.num_base >= 32
        assert dataset.num_queries >= 10
        assert "SIFT1M" in dataset.paper_reference

    def test_paper_dims(self):
        expectations = {
            "sift1m": 128,
            "gist1m": 960,
            "groups": 256,
            "people": 50,
            "pymk": 50,
            "neardupe": 2048,
        }
        for name, dim in expectations.items():
            assert load_dataset(name, scale=0.01).dim == dim

    def test_people_and_pymk_are_different_draws(self):
        people = load_dataset("people", scale=0.01)
        pymk = load_dataset("pymk", scale=0.01)
        n = min(people.num_base, pymk.num_base)
        assert not np.array_equal(people.base[:n], pymk.base[:n])

    def test_ground_truth_cached_and_correct(self):
        dataset = load_dataset("people", scale=0.01)
        truth5 = dataset.ground_truth(5)
        truth3 = dataset.ground_truth(3)
        np.testing.assert_array_equal(truth5[:, :3], truth3)
        from repro.offline.brute_force import exact_top_k

        expected, _ = exact_top_k(dataset.base, dataset.queries, 5)
        np.testing.assert_array_equal(truth5, expected)

    def test_dataset_repr(self):
        dataset = load_dataset("people", scale=0.01)
        assert "people" in repr(dataset)


class TestFvecsIo:
    def test_fvecs_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(20, 12)).astype(np.float32)
        path = tmp_path / "x.fvecs"
        write_fvecs(path, vectors)
        np.testing.assert_array_equal(read_fvecs(path), vectors)

    def test_ivecs_roundtrip(self, tmp_path):
        ids = np.arange(60, dtype=np.int32).reshape(6, 10)
        path = tmp_path / "x.ivecs"
        write_ivecs(path, ids)
        np.testing.assert_array_equal(read_ivecs(path), ids)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fvecs"
        path.write_bytes(b"")
        assert read_fvecs(path).size == 0

    def test_corrupt_dimension_rejected(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        np.array([-3, 0, 0], dtype=np.int32).tofile(path)
        with pytest.raises(SerializationError):
            read_fvecs(path)

    def test_inconsistent_dims_rejected(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        np.array([2, 0, 0, 3, 0, 0], dtype=np.int32).tofile(path)
        with pytest.raises(SerializationError):
            read_fvecs(path)

    def test_non_2d_write_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            write_fvecs(tmp_path / "x.fvecs", np.ones(5, dtype=np.float32))
