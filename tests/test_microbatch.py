"""Stress tests for the micro-batching admission layer.

The broker's concurrency contract: any interleaving of single-query and
batch calls from any number of client threads returns exactly what
sequential execution returns; ``close()`` never deadlocks, even with
requests in flight, and is idempotent.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.online.broker import Broker
from repro.online.microbatch import MicroBatcher
from repro.online.searcher import SearcherNode
from tests.conftest import FAST_HNSW

NUM_CLIENTS = 8


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=2,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=11,
    )


@pytest.fixture(scope="module")
def index(clustered_data, config):
    return build_lanns_index(clustered_data, config=config)


@pytest.fixture(scope="module")
def searchers(index):
    fleet = [SearcherNode(0), SearcherNode(1)]
    for shard_id, searcher in enumerate(fleet):
        searcher.host("main", index.shards[shard_id])
    return fleet


@pytest.fixture(scope="module")
def expected(searchers, config, clustered_queries):
    """Sequential ground truth from a plain (PR-1) broker."""
    plain = Broker(searchers, config)
    singles = [
        plain.search("main", query, 8, ef=48)
        for query in clustered_queries
    ]
    batch_ids, batch_dists = plain.search_batch(
        "main", clustered_queries, 8, ef=48
    )
    return singles, (batch_ids, batch_dists)


def make_core(searchers, config, **kwargs):
    defaults = dict(
        parallel_fanout=True, max_batch=8, max_wait_ms=5.0, cache_size=0
    )
    defaults.update(kwargs)
    return Broker(searchers, config, **defaults)


def run_clients(worker, num_clients=NUM_CLIENTS, join_timeout=60.0):
    """Run ``worker(client_id)`` on N threads; fail instead of hanging."""
    errors: list[BaseException] = []

    def wrapped(client_id):
        try:
            worker(client_id)
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(client,), daemon=True)
        for client in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=join_timeout)
    stuck = [thread for thread in threads if thread.is_alive()]
    assert not stuck, f"{len(stuck)} client threads deadlocked"
    if errors:
        raise errors[0]


class TestMicroBatcherUnit:
    @staticmethod
    def echo_execute(record):
        """An execute fn returning each row's first component as its id."""

        def execute(key, queries):
            record.append((key, queries.shape[0]))
            ids = np.arange(queries.shape[0], dtype=np.int64)[:, np.newaxis]
            dists = queries[:, :1].astype(np.float64)
            return ids, dists

        return execute

    def test_flush_on_max_batch(self):
        record: list = []
        batcher = MicroBatcher(
            self.echo_execute(record), max_batch=4, max_wait_ms=60_000.0
        )
        try:
            blocks = [
                batcher.submit("k", np.full((1, 2), row, dtype=np.float32))
                for row in range(4)
            ]
            for future in blocks:
                future.result(timeout=30)
        finally:
            batcher.close()
        # One coalesced flush, triggered by max_batch (the deadline is
        # a minute out, so a timer flush would hang the test instead).
        assert [rows for _, rows in record] == [4]

    def test_flush_on_deadline(self):
        record: list = []
        batcher = MicroBatcher(
            self.echo_execute(record), max_batch=1000, max_wait_ms=20.0
        )
        try:
            start = time.perf_counter()
            future = batcher.submit("k", np.zeros((1, 2), dtype=np.float32))
            future.result(timeout=30)
            elapsed = time.perf_counter() - start
        finally:
            batcher.close()
        assert [rows for _, rows in record] == [1]
        assert elapsed < 10.0  # flushed by the deadline, not by close()

    def test_groups_never_mix(self):
        record: list = []
        batcher = MicroBatcher(
            self.echo_execute(record), max_batch=8, max_wait_ms=10.0
        )
        try:
            futures = [
                batcher.submit(key, np.zeros((1, 2), dtype=np.float32))
                for key in ("a", "b", "a", "b")
            ]
            for future in futures:
                future.result(timeout=30)
        finally:
            batcher.close()
        assert sum(rows for _, rows in record) == 4
        assert {key for key, _ in record} == {"a", "b"}

    def test_oversized_block_flushes_alone(self):
        record: list = []
        batcher = MicroBatcher(
            self.echo_execute(record), max_batch=4, max_wait_ms=60_000.0
        )
        try:
            future = batcher.submit("k", np.zeros((10, 2), dtype=np.float32))
            ids, dists = future.result(timeout=30)
        finally:
            batcher.close()
        assert [rows for _, rows in record] == [10]
        assert ids.shape == (10, 1) and dists.shape == (10, 1)

    def test_blocks_are_never_split(self):
        record: list = []
        batcher = MicroBatcher(
            self.echo_execute(record), max_batch=4, max_wait_ms=30.0
        )
        try:
            first = batcher.submit("k", np.zeros((3, 2), dtype=np.float32))
            second = batcher.submit("k", np.ones((3, 2), dtype=np.float32))
            first.result(timeout=30)
            second.result(timeout=30)
        finally:
            batcher.close()
        # 3 + 3 > max_batch, and blocks stay whole: two separate flushes.
        assert [rows for _, rows in record] == [3, 3]

    def test_execute_error_propagates_to_all_waiters(self):
        calls = {"n": 0}

        def explode(key, queries):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("shard fleet on fire")
            ids = np.zeros((queries.shape[0], 1), dtype=np.int64)
            return ids, ids.astype(np.float64)

        batcher = MicroBatcher(explode, max_batch=2, max_wait_ms=60_000.0)
        try:
            futures = [
                batcher.submit("k", np.zeros((1, 2), dtype=np.float32))
                for _ in range(2)
            ]
            for future in futures:
                with pytest.raises(RuntimeError, match="on fire"):
                    future.result(timeout=30)
            # The flusher survives a failing batch and keeps serving.
            ok = batcher.submit("k", np.zeros((2, 2), dtype=np.float32))
            ids, _ = ok.result(timeout=30)
            assert ids.shape == (2, 1)
        finally:
            batcher.close()

    def test_submit_after_close_runs_inline(self):
        record: list = []
        batcher = MicroBatcher(
            self.echo_execute(record), max_batch=8, max_wait_ms=5.0
        )
        batcher.close()
        batcher.close()  # idempotent
        future = batcher.submit("k", np.zeros((2, 2), dtype=np.float32))
        ids, _ = future.result(timeout=30)
        assert ids.shape == (2, 1)
        assert batcher.stats["inline_after_close"] == 1

    def test_invalid_knobs_rejected(self):
        execute = self.echo_execute([])
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(execute, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(execute, max_wait_ms=-1.0)


class TestBrokerStress:
    def test_mixed_calls_match_sequential(
        self, searchers, config, clustered_queries, expected
    ):
        """8 threads of interleaved query/query_batch == sequential."""
        singles, (batch_ids, batch_dists) = expected
        core = make_core(searchers, config)
        num_queries = clustered_queries.shape[0]
        got_singles: list = [None] * num_queries
        got_blocks: dict[int, tuple] = {}
        try:

            def worker(client):
                # Strided singles...
                for row in range(client, num_queries, NUM_CLIENTS):
                    got_singles[row] = core.search(
                        "main", clustered_queries[row], 8, ef=48
                    )
                # ...interleaved with one multi-row batch per client.
                lo = client * 4
                hi = min(lo + 4, num_queries)
                got_blocks[client] = (
                    (lo, hi),
                    core.search_batch(
                        "main", clustered_queries[lo:hi], 8, ef=48
                    ),
                )

            run_clients(worker)
        finally:
            core.close()
        for row in range(num_queries):
            want_ids, want_dists = singles[row]
            got_ids, got_dists = got_singles[row]
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_array_equal(got_dists, want_dists)
        for (lo, hi), (ids, dists) in got_blocks.values():
            np.testing.assert_array_equal(ids, batch_ids[lo:hi])
            np.testing.assert_array_equal(dists, batch_dists[lo:hi])
        stats = core.stats()
        assert stats["microbatch"]["rows_executed"] >= num_queries

    def test_stress_with_cache_enabled(
        self, searchers, config, clustered_queries, expected
    ):
        """Repeated queries under load: cache hits stay bit-identical."""
        singles, _ = expected
        core = make_core(searchers, config, cache_size=256)
        num_queries = clustered_queries.shape[0]
        try:

            def worker(client):
                for _repeat in range(3):
                    for row in range(client, num_queries, NUM_CLIENTS):
                        ids, dists = core.search(
                            "main", clustered_queries[row], 8, ef=48
                        )
                        want_ids, want_dists = singles[row]
                        np.testing.assert_array_equal(ids, want_ids)
                        np.testing.assert_array_equal(dists, want_dists)

            run_clients(worker)
        finally:
            core.close()
        cache = core.stats()["cache"]
        assert cache["hits"] > 0
        assert cache["misses"] <= num_queries

    def test_close_during_inflight_requests_no_deadlock(
        self, searchers, config, clustered_queries, expected
    ):
        """close() drains in-flight work; late requests run inline."""
        singles, _ = expected
        core = make_core(searchers, config, max_wait_ms=10.0)
        num_queries = clustered_queries.shape[0]
        started = threading.Barrier(NUM_CLIENTS + 1)

        def worker(client):
            started.wait(timeout=30)
            for _repeat in range(5):
                for row in range(client, num_queries, NUM_CLIENTS):
                    ids, dists = core.search(
                        "main", clustered_queries[row], 8, ef=48
                    )
                    want_ids, want_dists = singles[row]
                    np.testing.assert_array_equal(ids, want_ids)
                    np.testing.assert_array_equal(dists, want_dists)

        closer_done = threading.Event()

        def closer():
            started.wait(timeout=30)
            time.sleep(0.02)  # land mid-flight
            core.close()
            core.close()  # idempotent, also mid-flight
            closer_done.set()

        close_thread = threading.Thread(target=closer, daemon=True)
        close_thread.start()
        run_clients(worker)
        close_thread.join(timeout=60)
        assert closer_done.is_set(), "close() deadlocked"
        # The broker still answers (inline + sequential fan-out) after close.
        ids, dists = core.search("main", clustered_queries[0], 8, ef=48)
        np.testing.assert_array_equal(ids, singles[0][0])
        core.close()  # idempotent after full shutdown

    def test_empty_batch_skips_admission(self, searchers, config):
        core = make_core(searchers, config, cache_size=16)
        try:
            empty = np.empty((0, 16), dtype=np.float32)
            ids, dists = core.search_batch("main", empty, 7, ef=48)
            assert ids.shape == (0, 7) and dists.shape == (0, 7)
            assert core.stats()["microbatch"]["blocks_admitted"] == 0
        finally:
            core.close()
