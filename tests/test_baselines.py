"""Tests for the from-scratch ANN baselines (Figure 1 participants)."""

import numpy as np
import pytest

from repro.baselines.annoy_forest import RPForestIndex
from repro.baselines.base import HnswAdapter
from repro.baselines.exact import BruteForceIndex
from repro.baselines.ivf import IvfFlatIndex
from repro.baselines.kmeans import kmeans
from repro.baselines.lsh import LshIndex
from repro.baselines.pq import PqIndex, ProductQuantizer
from repro.offline.brute_force import exact_top_k
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def truth(clustered_data, clustered_queries):
    ids, _ = exact_top_k(clustered_data, clustered_queries, 10)
    return ids


def recall_of(index, queries, truth, k=10):
    hits = 0
    for row, query in enumerate(queries):
        ids, _ = index.search(query, k)
        hits += len(set(ids.tolist()) & set(truth[row, :k].tolist()))
    return hits / (len(queries) * k)


class TestBruteForce:
    def test_exact(self, clustered_data, clustered_queries, truth):
        index = BruteForceIndex().fit(clustered_data)
        assert recall_of(index, clustered_queries, truth) == 1.0

    def test_distances_true_scale(self, clustered_data):
        index = BruteForceIndex().fit(clustered_data)
        ids, dists = index.search(clustered_data[0], 1)
        assert ids[0] == 0
        assert dists[0] == pytest.approx(0.0, abs=1e-2)

    def test_unfitted_rejected(self, clustered_queries):
        with pytest.raises(RuntimeError):
            BruteForceIndex().search(clustered_queries[0], 3)

    def test_search_batch_shape(self, clustered_data, clustered_queries):
        index = BruteForceIndex().fit(clustered_data)
        ids, dists = index.search_batch(clustered_queries[:4], 6)
        assert ids.shape == (4, 6)


class TestKmeans:
    def test_basic_clustering(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(size=(50, 2)) + [0, 0]
        blob_b = rng.normal(size=(50, 2)) + [20, 20]
        data = np.concatenate([blob_a, blob_b]).astype(np.float32)
        centers, assignment = kmeans(data, 2, seed=0)
        assert centers.shape == (2, 2)
        # The two blobs should be separated.
        assert len(set(assignment[:50])) == 1
        assert len(set(assignment[50:])) == 1
        assert assignment[0] != assignment[50]

    def test_assignment_is_nearest_center(self, clustered_data):
        centers, assignment = kmeans(clustered_data, 5, seed=1)
        dists = np.linalg.norm(
            clustered_data[:, np.newaxis, :] - centers[np.newaxis], axis=2
        )
        np.testing.assert_array_equal(assignment, np.argmin(dists, axis=1))

    def test_k_bounds(self, clustered_data):
        with pytest.raises(ValueError):
            kmeans(clustered_data, 0)
        with pytest.raises(ValueError):
            kmeans(clustered_data[:3], 5)

    def test_deterministic(self, clustered_data):
        a_centers, a_assign = kmeans(clustered_data, 4, seed=3)
        b_centers, b_assign = kmeans(clustered_data, 4, seed=3)
        np.testing.assert_array_equal(a_assign, b_assign)
        np.testing.assert_allclose(a_centers, b_centers)


class TestIvf:
    def test_reasonable_recall(self, clustered_data, clustered_queries, truth):
        index = IvfFlatIndex(nlist=16, nprobe=4, seed=0).fit(clustered_data)
        assert recall_of(index, clustered_queries, truth) >= 0.6

    def test_full_probe_is_exact(self, clustered_data, clustered_queries, truth):
        index = IvfFlatIndex(nlist=8, nprobe=8, seed=0).fit(clustered_data)
        assert recall_of(index, clustered_queries, truth) == 1.0

    def test_nprobe_monotone_recall(self, clustered_data, clustered_queries, truth):
        recalls = []
        for nprobe in (1, 4, 16):
            index = IvfFlatIndex(nlist=16, nprobe=nprobe, seed=0).fit(
                clustered_data
            )
            recalls.append(recall_of(index, clustered_queries, truth))
        assert recalls[0] <= recalls[1] <= recalls[2]

    def test_lists_partition_dataset(self, clustered_data):
        index = IvfFlatIndex(nlist=10, seed=0).fit(clustered_data)
        assert sum(index.list_sizes) == len(clustered_data)

    def test_validation(self):
        with pytest.raises(ValueError):
            IvfFlatIndex(nlist=0)
        with pytest.raises(ValueError):
            IvfFlatIndex(nprobe=0)


class TestLsh:
    def test_reasonable_recall(self, clustered_data, clustered_queries, truth):
        index = LshIndex(num_tables=12, num_bits=8, multiprobe=2, seed=0).fit(
            clustered_data
        )
        assert recall_of(index, clustered_queries, truth) >= 0.5

    def test_more_tables_higher_recall(self, clustered_data, clustered_queries, truth):
        small = LshIndex(num_tables=2, num_bits=10, seed=0).fit(clustered_data)
        large = LshIndex(num_tables=16, num_bits=10, seed=0).fit(clustered_data)
        assert recall_of(large, clustered_queries, truth) >= recall_of(
            small, clustered_queries, truth
        )

    def test_buckets_cover_dataset(self, clustered_data):
        index = LshIndex(num_tables=3, num_bits=6, seed=0).fit(clustered_data)
        for table in index._tables:
            assert sum(len(rows) for rows in table.values()) == len(
                clustered_data
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            LshIndex(num_tables=0)
        with pytest.raises(ValueError):
            LshIndex(num_bits=63)
        with pytest.raises(ValueError):
            LshIndex(multiprobe=-1)


class TestRPForest:
    def test_reasonable_recall(self, clustered_data, clustered_queries, truth):
        index = RPForestIndex(num_trees=10, leaf_size=24, seed=0).fit(
            clustered_data
        )
        assert recall_of(index, clustered_queries, truth) >= 0.7

    def test_search_k_monotone_recall(self, clustered_data, clustered_queries, truth):
        index = RPForestIndex(num_trees=8, leaf_size=16, seed=0).fit(
            clustered_data
        )
        recalls = []
        for search_k in (20, 100, 400):
            index.search_k = search_k
            recalls.append(recall_of(index, clustered_queries, truth))
        assert recalls[0] <= recalls[-1]

    def test_leaves_partition_dataset(self, clustered_data):
        index = RPForestIndex(num_trees=3, leaf_size=20, seed=0).fit(
            clustered_data
        )
        for tree in index._trees:
            leaf_rows = np.concatenate(
                [node.rows for node in tree if node.is_leaf]
            )
            assert sorted(leaf_rows.tolist()) == list(
                range(len(clustered_data))
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            RPForestIndex(num_trees=0)
        with pytest.raises(ValueError):
            RPForestIndex(leaf_size=1)


class TestPq:
    def test_quantizer_roundtrip_error_shrinks_with_codes(self, clustered_data):
        coarse = ProductQuantizer(num_subspaces=4, num_codes=4, seed=0).fit(
            clustered_data
        )
        fine = ProductQuantizer(num_subspaces=4, num_codes=64, seed=0).fit(
            clustered_data
        )
        def error(quantizer):
            decoded = quantizer.decode(quantizer.encode(clustered_data))
            return float(np.linalg.norm(decoded - clustered_data))
        assert error(fine) < error(coarse)

    def test_dim_must_divide(self, clustered_data):
        with pytest.raises(ValueError, match="divisible"):
            ProductQuantizer(num_subspaces=5).fit(clustered_data)  # 16 % 5

    def test_adc_approximates_true_distance(self, clustered_data, clustered_queries):
        quantizer = ProductQuantizer(num_subspaces=8, num_codes=32, seed=0).fit(
            clustered_data
        )
        codes = quantizer.encode(clustered_data)
        query = clustered_queries[0]
        adc = np.sqrt(quantizer.adc_scores(query, codes))
        true = np.linalg.norm(clustered_data - query, axis=1)
        correlation = np.corrcoef(adc, true)[0, 1]
        assert correlation > 0.95

    def test_index_recall_with_rerank(self, clustered_data, clustered_queries, truth):
        index = PqIndex(
            num_subspaces=8, num_codes=64, rerank=60, seed=0
        ).fit(clustered_data)
        assert recall_of(index, clustered_queries, truth) >= 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            ProductQuantizer(num_subspaces=0)
        with pytest.raises(ValueError):
            ProductQuantizer(num_codes=1)
        with pytest.raises(ValueError):
            PqIndex(rerank=-1)


class TestHnswAdapter:
    def test_wraps_hnsw(self, clustered_data, clustered_queries, truth):
        index = HnswAdapter(params=FAST_HNSW, ef_search=64).fit(
            clustered_data
        )
        assert recall_of(index, clustered_queries, truth) >= 0.9
