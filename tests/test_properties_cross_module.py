"""Cross-module property-based tests (hypothesis + seeded numpy fuzzing).

These check the invariants the platform's correctness actually rests on:
partitioning + two-level merging must be *transparent* -- for exact
(brute force) search, any (shards, segments) layout must return exactly
the global answer; HNSW serialization must be lossless for arbitrary
(well-formed) float32 data; and the batch kernels the micro-batching
admission layer silently depends on (``batch_top_k``,
``Scorer.score_pairs``) must be invariant to batch composition --
coalescing requests from different clients must never change any row's
answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import merge_segment_results, merge_shard_results
from repro.core.topk import batch_top_k, per_shard_top_k
from repro.distance.scorer import Scorer
from repro.hnsw.index import build_hnsw
from repro.hnsw.params import HnswParams
from repro.offline.brute_force import exact_top_k
from repro.sharding.sharder import HashSharder
from repro.storage.manifest import hnsw_from_bytes, hnsw_to_bytes

TINY_HNSW = HnswParams(M=4, ef_construction=16, ef_search=16, seed=0)


@st.composite
def small_dataset(draw):
    n = draw(st.integers(4, 40))
    dim = draw(st.integers(2, 6))
    flat = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, width=32),
            min_size=n * dim,
            max_size=n * dim,
        )
    )
    return np.asarray(flat, dtype=np.float32).reshape(n, dim)


class TestPartitioningTransparency:
    @given(small_dataset(), st.integers(1, 4), st.integers(1, 4), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_exact_search_is_partition_invariant(
        self, data, num_shards, num_segments, k
    ):
        """Brute-force search through the two-level merge equals global
        brute-force search, for ANY partition layout.

        This is the platform's core correctness contract: partitioning
        may cost recall only through the *approximate* per-segment index
        and the segmenter routing, never through the merge machinery.
        """
        n = data.shape[0]
        k = min(k, n)
        query = data[0]
        global_ids, _ = exact_top_k(data, query[np.newaxis], k)

        sharder = HashSharder(num_shards)
        rng = np.random.default_rng(0)
        segment_of = rng.integers(0, num_segments, size=n)
        shard_results = []
        for shard in range(num_shards):
            segment_lists = []
            for segment in range(num_segments):
                rows = np.asarray(
                    [
                        row
                        for row in range(n)
                        if sharder.shard_of(row) == shard
                        and segment_of[row] == segment
                    ],
                    dtype=np.int64,
                )
                if rows.size == 0:
                    continue
                ids, dists = exact_top_k(
                    data[rows], query[np.newaxis], min(k, rows.size)
                )
                segment_lists.append(
                    [
                        (float(dist), int(rows[item]))
                        for dist, item in zip(dists[0], ids[0])
                    ]
                )
            if segment_lists:
                shard_results.append(
                    merge_segment_results(segment_lists, k)
                )
        merged = merge_shard_results(shard_results, k)
        assert [item for _, item in merged] == global_ids[0].tolist()

    @given(st.integers(1, 64), st.integers(1, 1000))
    @settings(max_examples=60, deadline=None)
    def test_per_shard_budget_bounds(self, num_shards, top_k):
        budget = per_shard_top_k(top_k, num_shards, 0.95)
        assert 1 <= budget <= top_k
        assert budget * num_shards >= top_k


def random_candidates(rng, num_rows, num_cols):
    """A (dists, ids) candidate matrix pair with realistic padding/dupes."""
    dists = rng.uniform(0.0, 10.0, size=(num_rows, num_cols))
    # Duplicate ids inside a row (physical spill) are likely: the id
    # domain is deliberately smaller than the column count.
    ids = rng.integers(0, max(num_cols // 2, 2), size=(num_rows, num_cols))
    pad = rng.random(size=(num_rows, num_cols)) < 0.25
    dists = np.where(pad, np.inf, dists)
    ids = np.where(pad, -1, ids).astype(np.int64)
    return dists, ids


class TestBatchTopKCompositionInvariance:
    """``batch_top_k`` must treat every row independently.

    Micro-batch coalescing stacks unrelated clients' rows into one merge
    call; these fuzz tests pin that no row's result depends on row
    order, on duplicates of itself elsewhere in the batch, or on the
    order candidates arrive within the row.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_row_permutation_equivariance(self, seed):
        rng = np.random.default_rng(seed)
        num_rows = int(rng.integers(1, 12))
        num_cols = int(rng.integers(1, 30))
        k = int(rng.integers(1, 12))
        dists, ids = random_candidates(rng, num_rows, num_cols)
        base_ids, base_dists = batch_top_k(dists, ids, k)
        perm = rng.permutation(num_rows)
        perm_ids, perm_dists = batch_top_k(dists[perm], ids[perm], k)
        np.testing.assert_array_equal(perm_ids, base_ids[perm])
        np.testing.assert_array_equal(perm_dists, base_dists[perm])

    @pytest.mark.parametrize("seed", range(8))
    def test_column_permutation_invariance(self, seed):
        """Candidate arrival order within a row must not matter."""
        rng = np.random.default_rng(100 + seed)
        num_rows = int(rng.integers(1, 10))
        num_cols = int(rng.integers(2, 25))
        k = int(rng.integers(1, 10))
        dists, ids = random_candidates(rng, num_rows, num_cols)
        base_ids, base_dists = batch_top_k(dists, ids, k)
        shuffled_dists = np.empty_like(dists)
        shuffled_ids = np.empty_like(ids)
        for row in range(num_rows):
            order = rng.permutation(num_cols)
            shuffled_dists[row] = dists[row, order]
            shuffled_ids[row] = ids[row, order]
        got_ids, got_dists = batch_top_k(shuffled_dists, shuffled_ids, k)
        np.testing.assert_array_equal(got_ids, base_ids)
        np.testing.assert_array_equal(got_dists, base_dists)

    @pytest.mark.parametrize("seed", range(8))
    def test_duplicate_rows_get_identical_answers(self, seed):
        """The same query admitted twice must get the same result --
        coalescing two clients sending identical queries is routine."""
        rng = np.random.default_rng(200 + seed)
        num_rows = int(rng.integers(1, 8))
        num_cols = int(rng.integers(1, 20))
        k = int(rng.integers(1, 8))
        dists, ids = random_candidates(rng, num_rows, num_cols)
        doubled_dists = np.concatenate([dists, dists], axis=0)
        doubled_ids = np.concatenate([ids, ids], axis=0)
        got_ids, got_dists = batch_top_k(doubled_dists, doubled_ids, k)
        np.testing.assert_array_equal(got_ids[:num_rows], got_ids[num_rows:])
        np.testing.assert_array_equal(
            got_dists[:num_rows], got_dists[num_rows:]
        )
        base_ids, base_dists = batch_top_k(dists, ids, k)
        np.testing.assert_array_equal(got_ids[:num_rows], base_ids)
        np.testing.assert_array_equal(got_dists[:num_rows], base_dists)

    @pytest.mark.parametrize("seed", range(4))
    def test_singleton_rows_match_batch(self, seed):
        rng = np.random.default_rng(300 + seed)
        num_rows = int(rng.integers(2, 8))
        num_cols = int(rng.integers(1, 20))
        k = int(rng.integers(1, 8))
        dists, ids = random_candidates(rng, num_rows, num_cols)
        base_ids, base_dists = batch_top_k(dists, ids, k)
        for row in range(num_rows):
            one_ids, one_dists = batch_top_k(
                dists[row : row + 1], ids[row : row + 1], k
            )
            np.testing.assert_array_equal(one_ids[0], base_ids[row])
            np.testing.assert_array_equal(one_dists[0], base_dists[row])


class TestScorePairsCompositionInvariance:
    """``Scorer.score_pairs`` must score each pair independently.

    Lockstep traversal of a coalesced batch scores (query, candidate)
    pairs from unrelated requests in single fused calls; every pair's
    score must be *bit-identical* no matter how the call is chunked.
    """

    @pytest.mark.parametrize(
        "metric", ["euclidean", "cosine", "inner_product"]
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_chunking_is_bit_identical(self, metric, seed):
        rng = np.random.default_rng(400 + seed)
        dim = int(rng.integers(2, 12))
        num_points = int(rng.integers(4, 40))
        num_queries = int(rng.integers(1, 9))
        num_pairs = int(rng.integers(1, 60))
        scorer = Scorer(metric, dim)
        scorer.add(rng.normal(size=(num_points, dim)).astype(np.float32))
        queries = scorer.prepare_queries(
            rng.normal(size=(num_queries, dim)).astype(np.float32)
        )
        query_rows = rng.integers(0, num_queries, size=num_pairs)
        ids = rng.integers(0, num_points, size=num_pairs)
        full = scorer.score_pairs(queries, query_rows, ids)
        # Any chunking of the pair list must reproduce the full call.
        splits = np.sort(rng.integers(0, num_pairs + 1, size=3))
        chunked = np.concatenate(
            [
                scorer.score_pairs(queries, query_rows[lo:hi], ids[lo:hi])
                for lo, hi in zip(
                    np.concatenate(([0], splits)),
                    np.concatenate((splits, [num_pairs])),
                )
            ]
        )
        np.testing.assert_array_equal(chunked, full)

    @pytest.mark.parametrize(
        "metric", ["euclidean", "cosine", "inner_product"]
    )
    def test_pairs_of_one_match_batch(self, metric):
        rng = np.random.default_rng(7)
        dim, num_points, num_queries, num_pairs = 8, 30, 5, 24
        scorer = Scorer(metric, dim)
        scorer.add(rng.normal(size=(num_points, dim)).astype(np.float32))
        queries = scorer.prepare_queries(
            rng.normal(size=(num_queries, dim)).astype(np.float32)
        )
        query_rows = rng.integers(0, num_queries, size=num_pairs)
        ids = rng.integers(0, num_points, size=num_pairs)
        full = scorer.score_pairs(queries, query_rows, ids)
        for pair in range(num_pairs):
            single = scorer.score_pairs(
                queries, query_rows[pair : pair + 1], ids[pair : pair + 1]
            )
            assert single[0] == full[pair]

    @pytest.mark.parametrize("seed", range(4))
    def test_precomputed_query_norms_change_nothing(self, seed):
        rng = np.random.default_rng(500 + seed)
        dim, num_points, num_queries, num_pairs = 6, 20, 4, 30
        scorer = Scorer("euclidean", dim)
        scorer.add(rng.normal(size=(num_points, dim)).astype(np.float32))
        queries = scorer.prepare_queries(
            rng.normal(size=(num_queries, dim)).astype(np.float32)
        )
        query_rows = rng.integers(0, num_queries, size=num_pairs)
        ids = rng.integers(0, num_points, size=num_pairs)
        lazy = scorer.score_pairs(queries, query_rows, ids)
        eager = scorer.score_pairs(
            queries,
            query_rows,
            ids,
            query_sq=scorer.query_sq_norms(queries),
        )
        np.testing.assert_array_equal(lazy, eager)


class TestHnswPropertyRoundtrip:
    @given(small_dataset())
    @settings(max_examples=20, deadline=None)
    def test_serialization_lossless_for_arbitrary_data(self, data):
        index = build_hnsw(data, params=TINY_HNSW)
        restored = hnsw_from_bytes(hnsw_to_bytes(index))
        query = data[0]
        ids_a, dists_a = index.search(query, min(3, len(data)), ef=16)
        ids_b, dists_b = restored.search(query, min(3, len(data)), ef=16)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(dists_a, dists_b, rtol=1e-6)

    @given(small_dataset())
    @settings(max_examples=20, deadline=None)
    def test_search_returns_valid_ids_and_sorted_distances(self, data):
        index = build_hnsw(data, params=TINY_HNSW)
        k = min(5, len(data))
        ids, dists = index.search(data[0], k, ef=16)
        assert len(ids) == k
        assert len(set(ids.tolist())) == k  # no duplicates
        assert (ids >= 0).all() and (ids < len(data)).all()
        assert np.all(np.diff(dists) >= -1e-9)

    @given(small_dataset())
    @settings(max_examples=20, deadline=None)
    def test_graph_invariants_for_arbitrary_data(self, data):
        index = build_hnsw(data, params=TINY_HNSW)
        index.graph.check_invariants(
            TINY_HNSW.effective_max_m, TINY_HNSW.effective_max_m0
        )
