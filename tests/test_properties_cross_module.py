"""Cross-module property-based tests (hypothesis).

These check the invariants the platform's correctness actually rests on:
partitioning + two-level merging must be *transparent* -- for exact
(brute force) search, any (shards, segments) layout must return exactly
the global answer; and HNSW serialization must be lossless for arbitrary
(well-formed) float32 data.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import merge_segment_results, merge_shard_results
from repro.core.topk import per_shard_top_k
from repro.hnsw.index import build_hnsw
from repro.hnsw.params import HnswParams
from repro.offline.brute_force import exact_top_k
from repro.sharding.sharder import HashSharder
from repro.storage.manifest import hnsw_from_bytes, hnsw_to_bytes

TINY_HNSW = HnswParams(M=4, ef_construction=16, ef_search=16, seed=0)


@st.composite
def small_dataset(draw):
    n = draw(st.integers(4, 40))
    dim = draw(st.integers(2, 6))
    flat = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, width=32),
            min_size=n * dim,
            max_size=n * dim,
        )
    )
    return np.asarray(flat, dtype=np.float32).reshape(n, dim)


class TestPartitioningTransparency:
    @given(small_dataset(), st.integers(1, 4), st.integers(1, 4), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_exact_search_is_partition_invariant(
        self, data, num_shards, num_segments, k
    ):
        """Brute-force search through the two-level merge equals global
        brute-force search, for ANY partition layout.

        This is the platform's core correctness contract: partitioning
        may cost recall only through the *approximate* per-segment index
        and the segmenter routing, never through the merge machinery.
        """
        n = data.shape[0]
        k = min(k, n)
        query = data[0]
        global_ids, _ = exact_top_k(data, query[np.newaxis], k)

        sharder = HashSharder(num_shards)
        rng = np.random.default_rng(0)
        segment_of = rng.integers(0, num_segments, size=n)
        shard_results = []
        for shard in range(num_shards):
            segment_lists = []
            for segment in range(num_segments):
                rows = np.asarray(
                    [
                        row
                        for row in range(n)
                        if sharder.shard_of(row) == shard
                        and segment_of[row] == segment
                    ],
                    dtype=np.int64,
                )
                if rows.size == 0:
                    continue
                ids, dists = exact_top_k(
                    data[rows], query[np.newaxis], min(k, rows.size)
                )
                segment_lists.append(
                    [
                        (float(dist), int(rows[item]))
                        for dist, item in zip(dists[0], ids[0])
                    ]
                )
            if segment_lists:
                shard_results.append(
                    merge_segment_results(segment_lists, k)
                )
        merged = merge_shard_results(shard_results, k)
        assert [item for _, item in merged] == global_ids[0].tolist()

    @given(st.integers(1, 64), st.integers(1, 1000))
    @settings(max_examples=60, deadline=None)
    def test_per_shard_budget_bounds(self, num_shards, top_k):
        budget = per_shard_top_k(top_k, num_shards, 0.95)
        assert 1 <= budget <= top_k
        assert budget * num_shards >= top_k


class TestHnswPropertyRoundtrip:
    @given(small_dataset())
    @settings(max_examples=20, deadline=None)
    def test_serialization_lossless_for_arbitrary_data(self, data):
        index = build_hnsw(data, params=TINY_HNSW)
        restored = hnsw_from_bytes(hnsw_to_bytes(index))
        query = data[0]
        ids_a, dists_a = index.search(query, min(3, len(data)), ef=16)
        ids_b, dists_b = restored.search(query, min(3, len(data)), ef=16)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(dists_a, dists_b, rtol=1e-6)

    @given(small_dataset())
    @settings(max_examples=20, deadline=None)
    def test_search_returns_valid_ids_and_sorted_distances(self, data):
        index = build_hnsw(data, params=TINY_HNSW)
        k = min(5, len(data))
        ids, dists = index.search(data[0], k, ef=16)
        assert len(ids) == k
        assert len(set(ids.tolist())) == k  # no duplicates
        assert (ids >= 0).all() and (ids < len(data)).all()
        assert np.all(np.diff(dists) >= -1e-9)

    @given(small_dataset())
    @settings(max_examples=20, deadline=None)
    def test_graph_invariants_for_arbitrary_data(self, data):
        index = build_hnsw(data, params=TINY_HNSW)
        index.graph.check_invariants(
            TINY_HNSW.effective_max_m, TINY_HNSW.effective_max_m0
        )
