"""Full-platform integration tests: the paper's workflow end to end.

Flow under test (Figures 5-9): learn a segmenter on a subsample, build a
two-level partitioned index on the cluster, persist it to the filesystem,
query it through the distributed pipeline, validate recall against the
distributed brute-force job, then deploy the same artifact to the online
tier and check the two serving paths agree.
"""

import numpy as np
import pytest

from repro.core.config import LannsConfig
from repro.hnsw.params import HnswParams
from repro.offline.brute_force import brute_force_job
from repro.offline.indexing import build_index_job
from repro.offline.learn import learn_segmenter_job
from repro.offline.querying import query_index_job
from repro.offline.recall import recall_at_k
from repro.online.service import OnlineService
from repro.sparklite.cluster import LocalCluster
from repro.storage.hdfs import LocalHdfs
from tests.conftest import make_clustered


@pytest.fixture(scope="module", params=["rs", "rh", "apd"])
def platform(request, tmp_path_factory):
    """One full offline platform run per segmenter kind."""
    segmenter_kind = request.param
    data = make_clustered(700, 24, num_clusters=10, seed=21)
    rng = np.random.default_rng(22)
    rows = rng.integers(0, 700, size=60)
    queries = (
        data[rows] + rng.normal(scale=0.15, size=(60, 24))
    ).astype(np.float32)

    fs = LocalHdfs(tmp_path_factory.mktemp(f"hdfs-{segmenter_kind}"))
    cluster = LocalCluster(num_executors=4, fs=fs)
    config = LannsConfig(
        num_shards=2,
        num_segments=4,
        segmenter=segmenter_kind,
        alpha=0.15,
        hnsw=HnswParams(M=8, ef_construction=48, ef_search=48),
        segmenter_sample_size=700,
        seed=9,
    )
    segmenter = learn_segmenter_job(
        cluster, fs, data, config, output_path="segmenter.json"
    )
    manifest, build_metrics = build_index_job(
        cluster, fs, data, config, "indices/main", segmenter=segmenter
    )
    offline = query_index_job(
        cluster, fs, "indices/main", queries, top_k=10, ef=64,
        checkpoint=True,
    )
    truth_ids, _ = brute_force_job(cluster, data, queries, 10)
    return {
        "kind": segmenter_kind,
        "data": data,
        "queries": queries,
        "fs": fs,
        "cluster": cluster,
        "config": config,
        "manifest": manifest,
        "build_metrics": build_metrics,
        "offline": offline,
        "truth": truth_ids,
    }


class TestOfflinePlatform:
    def test_recall_meets_paper_expectations(self, platform):
        """RS and APD keep recall near HNSW levels; RH drops but stays
        useful (Table 1 shape)."""
        recall = recall_at_k(platform["offline"].ids, platform["truth"], 10)
        floor = 0.60 if platform["kind"] == "rh" else 0.88
        assert recall >= floor, (
            f"{platform['kind']}: recall@10={recall:.3f} below {floor}"
        )

    def test_index_accounts_for_every_vector(self, platform):
        assert platform["manifest"].total_vectors == len(platform["data"])

    def test_build_parallelism_was_used(self, platform):
        metrics = platform["build_metrics"]
        assert len(metrics.tasks) == platform["config"].total_partitions
        # Simulated scaling: 8 executors at least as fast as 1.
        assert metrics.makespan(8) <= metrics.makespan(1) + 1e-9

    def test_temp_paths_cleaned(self, platform):
        assert platform["fs"].ls_recursive("_tmp") == []


class TestOnlineOfflineAgreement:
    def test_online_serving_matches_offline_results(self, platform):
        service = OnlineService()
        service.deploy(platform["fs"], "indices/main")
        offline_ids = platform["offline"].ids
        for row, query in enumerate(platform["queries"][:20]):
            online_ids, _ = service.query(query, 10, ef=64)
            # Same artifact, same parameters -> identical answers.
            np.testing.assert_array_equal(
                online_ids, offline_ids[row][: len(online_ids)]
            )

    def test_online_recall(self, platform):
        service = OnlineService()
        service.deploy(platform["fs"], "indices/main")
        ids = np.full((20, 10), -1, dtype=np.int64)
        for row, query in enumerate(platform["queries"][:20]):
            found, _ = service.query(query, 10, ef=64)
            ids[row, : len(found)] = found
        recall = recall_at_k(ids, platform["truth"][:20], 10)
        floor = 0.60 if platform["kind"] == "rh" else 0.88
        assert recall >= floor


class TestPerShardTopKEffect:
    def test_budget_saves_work_without_hurting_recall_much(self, platform):
        """perShardTopK fetches ~cI*topK per shard instead of topK; the
        merged recall must stay within a point of the full fetch
        (Section 5.3.2)."""
        cluster = platform["cluster"]
        fs = platform["fs"]
        queries = platform["queries"]
        full = query_index_job(
            cluster, fs, "indices/main", queries, top_k=10, ef=64,
            checkpoint=False,
        )
        # Rebuild with budgeting off for comparison.
        config_off = platform["config"].with_updates(use_per_shard_topk=False)
        build_index_job(
            cluster, fs, platform["data"], config_off, "indices/nobudget"
        )
        unbudgeted = query_index_job(
            cluster, fs, "indices/nobudget", queries, top_k=10, ef=64,
            checkpoint=False,
        )
        recall_budgeted = recall_at_k(full.ids, platform["truth"], 10)
        recall_full = recall_at_k(unbudgeted.ids, platform["truth"], 10)
        assert recall_budgeted >= recall_full - 0.02
