"""Tests for the index export format and its metadata coupling."""

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.errors import MetadataMismatchError, SerializationError
from repro.storage.manifest import (
    IndexManifest,
    load_lanns_index,
    load_manifest,
    load_segmenter,
    load_shard,
    save_lanns_index,
)
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=2,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=3,
    )


@pytest.fixture(scope="module")
def index(clustered_data, config):
    return build_lanns_index(clustered_data, config=config)


class TestSaveLoad:
    def test_layout_written(self, index, fs):
        save_lanns_index(index, fs, "idx")
        files = fs.ls_recursive("idx")
        assert "idx/metadata.json" in files
        assert "idx/segmenter.json" in files
        assert "idx/shard=0/segment=0.npz" in files
        assert "idx/shard=1/segment=1.npz" in files

    def test_manifest_contents(self, index, fs, config, clustered_data):
        manifest = save_lanns_index(index, fs, "idx")
        assert manifest.dim == clustered_data.shape[1]
        assert manifest.total_vectors == len(index)
        assert manifest.lanns_config == config
        assert len(manifest.checksums) == 2 * 2 + 1  # partitions + segmenter
        reloaded = load_manifest(fs, "idx")
        assert reloaded.to_dict() == manifest.to_dict()

    def test_roundtrip_query_equivalence(self, index, fs, clustered_queries):
        save_lanns_index(index, fs, "idx")
        restored = load_lanns_index(fs, "idx")
        for query in clustered_queries[:5]:
            ids_a, dists_a = index.query(query, 8, ef=48)
            ids_b, dists_b = restored.query(query, 8, ef=48)
            np.testing.assert_array_equal(ids_a, ids_b)
            np.testing.assert_allclose(dists_a, dists_b, rtol=1e-6)

    def test_load_single_shard(self, index, fs, clustered_queries):
        save_lanns_index(index, fs, "idx")
        shard = load_shard(fs, "idx", 1)
        assert shard.shard_id == 1
        assert len(shard) == len(index.shards[1])
        results = shard.search(clustered_queries[0], 5)
        expected = index.shards[1].search(clustered_queries[0], 5)
        assert [item for _, item in results] == [item for _, item in expected]

    def test_load_shard_range_checked(self, index, fs):
        save_lanns_index(index, fs, "idx")
        with pytest.raises(ValueError, match="out of range"):
            load_shard(fs, "idx", 5)

    def test_segmenter_roundtrip(self, index, fs, clustered_data):
        save_lanns_index(index, fs, "idx")
        segmenter = load_segmenter(fs, "idx")
        assert segmenter.route_data_batch(clustered_data[:20]) == (
            index.segmenter.route_data_batch(clustered_data[:20])
        )


class TestMetadataGuards:
    def test_expected_config_mismatch_rejected(self, index, fs, config):
        save_lanns_index(index, fs, "idx")
        other = config.with_updates(alpha=0.3)
        with pytest.raises(MetadataMismatchError, match="configuration"):
            load_lanns_index(fs, "idx", expected_config=other)

    def test_expected_config_match_accepted(self, index, fs, config):
        save_lanns_index(index, fs, "idx")
        load_lanns_index(fs, "idx", expected_config=config)

    def test_tampered_segment_detected(self, index, fs):
        save_lanns_index(index, fs, "idx")
        raw = fs.read_bytes("idx/shard=0/segment=0.npz")
        tampered = raw[:-1] + bytes([raw[-1] ^ 0xFF])
        fs.write_bytes("idx/shard=0/segment=0.npz", tampered)
        with pytest.raises(MetadataMismatchError, match="checksum"):
            load_lanns_index(fs, "idx")

    def test_tampered_segmenter_detected(self, index, fs):
        save_lanns_index(index, fs, "idx")
        fs.write_text("idx/segmenter.json", "{}")
        with pytest.raises(MetadataMismatchError, match="checksum"):
            load_segmenter(fs, "idx")

    def test_unknown_format_version_rejected(self, index, fs):
        save_lanns_index(index, fs, "idx")
        payload = fs.read_json("idx/metadata.json")
        payload["format_version"] = 99
        with pytest.raises(SerializationError, match="version"):
            IndexManifest.from_dict(payload)
