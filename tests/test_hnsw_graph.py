"""Tests for the layered graph storage and visited-set machinery."""

import pytest

from repro.hnsw.graph import HnswGraph, VisitedPool, VisitedTable


class TestHnswGraph:
    def test_add_node_assigns_sequential_ids(self):
        graph = HnswGraph()
        assert graph.add_node(0) == 0
        assert graph.add_node(2) == 1
        assert len(graph) == 2
        assert graph.levels == [0, 2]

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            HnswGraph().add_node(-1)

    def test_links_per_level(self):
        graph = HnswGraph()
        graph.add_node(1)
        graph.add_node(1)
        graph.add_link(0, 0, 1)
        graph.add_link(0, 1, 1)
        assert graph.neighbors(0, 0) == [1]
        assert graph.neighbors(0, 1) == [1]
        assert graph.neighbors(1, 0) == []
        assert graph.degree(0, 0) == 1

    def test_set_neighbors_copies(self):
        graph = HnswGraph()
        graph.add_node(0)
        graph.add_node(0)
        source = [1]
        graph.set_neighbors(0, 0, source)
        source.append(99)
        assert graph.neighbors(0, 0) == [1]

    def test_invariants_pass_on_valid_graph(self):
        graph = HnswGraph()
        graph.add_node(1)
        graph.add_node(0)
        graph.entry_point = 0
        graph.max_level = 1
        graph.add_link(0, 0, 1)
        graph.add_link(1, 0, 0)
        graph.check_invariants(max_m=4, max_m0=8)

    def test_invariants_catch_self_loop(self):
        graph = HnswGraph()
        graph.add_node(0)
        graph.entry_point = 0
        graph.max_level = 0
        graph.add_link(0, 0, 0)
        with pytest.raises(AssertionError, match="self-loop"):
            graph.check_invariants(max_m=4, max_m0=8)

    def test_invariants_catch_degree_overflow(self):
        graph = HnswGraph()
        for _ in range(4):
            graph.add_node(0)
        graph.entry_point = 0
        graph.max_level = 0
        graph.set_neighbors(0, 0, [1, 2, 3])
        with pytest.raises(AssertionError, match="degree"):
            graph.check_invariants(max_m=2, max_m0=2)

    def test_invariants_catch_link_above_neighbor_level(self):
        graph = HnswGraph()
        graph.add_node(1)
        graph.add_node(0)
        graph.entry_point = 0
        graph.max_level = 1
        graph.set_neighbors(0, 1, [1])  # node 1 does not exist at level 1
        with pytest.raises(AssertionError, match="above its top level"):
            graph.check_invariants(max_m=4, max_m0=8)

    def test_empty_graph_invariants(self):
        HnswGraph().check_invariants(max_m=4, max_m0=8)


class TestVisitedTable:
    def test_visit_and_reset(self):
        table = VisitedTable(4)
        table.reset(4)
        assert not table.visited(2)
        table.visit(2)
        assert table.visited(2)
        table.reset(4)
        assert not table.visited(2)

    def test_grows_on_demand(self):
        table = VisitedTable(2)
        table.reset(100)
        table.visit(99)
        assert table.visited(99)

    def test_epochs_isolate_searches(self):
        table = VisitedTable(8)
        for _ in range(100):
            table.reset(8)
            assert not table.visited(3)
            table.visit(3)


class TestVisitedPool:
    def test_same_thread_reuses_table(self):
        pool = VisitedPool()
        first = pool.get(10)
        first.visit(5)
        second = pool.get(10)
        assert second is first
        assert not second.visited(5)  # reset happened

    def test_threads_get_distinct_tables(self):
        import threading

        pool = VisitedPool()
        main_table = pool.get(10)
        seen = {}

        def worker():
            seen["table"] = pool.get(10)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["table"] is not main_table
