"""Tests for the eval helpers: timing, tables, experiment harness."""

import numpy as np
import pytest

from repro.core.config import LannsConfig
from repro.eval.harness import (
    build_partitioned,
    evaluate_recall,
    query_experiment,
    swap_segmenter,
)
from repro.eval.tables import format_table, write_result_table
from repro.eval.timing import Timer, measure_latency, measure_qps
from repro.data.datasets import Dataset
from repro.segmenters.learner import learn_segmenter
from tests.conftest import FAST_HNSW


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.elapsed > 0


class TestMeasure:
    def test_latency_shape(self):
        queries = np.zeros((7, 3))
        latencies = measure_latency(lambda q: None, queries)
        assert latencies.shape == (7,)
        assert (latencies >= 0).all()

    def test_qps_keys(self):
        stats = measure_qps(lambda q: None, np.zeros((5, 2)))
        assert set(stats) == {
            "qps", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"
        }
        assert stats["qps"] > 0
        assert stats["max_ms"] >= stats["p99_ms"] >= stats["p50_ms"]


class TestTables:
    def test_format_alignment(self):
        rows = [
            {"method": "HNSW", "recall": 0.9912, "ms": 50.4},
            {"method": "RS(1,8)", "recall": 0.979, "ms": 58.8},
        ]
        text = format_table(rows, title="Table X")
        lines = text.splitlines()
        assert lines[0] == "Table X"
        assert "method" in lines[1]
        assert len(lines) == 5

    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_column_selection(self):
        text = format_table(
            [{"a": 1, "b": 2}], columns=["b"]
        )
        assert "a" not in text.splitlines()[0]

    def test_write_result_table(self, tmp_path):
        rows = [{"k": 1, "recall": 0.5}]
        text = write_result_table(
            "table_test",
            rows,
            results_dir=tmp_path,
            title="T",
            notes="paper says 0.6",
        )
        assert "T" in text
        assert (tmp_path / "table_test.txt").exists()
        assert (tmp_path / "table_test.json").exists()
        assert "paper says" in (tmp_path / "table_test.txt").read_text()

    def test_nan_rendered_as_dash(self):
        assert "-" in format_table([{"x": float("nan")}])


class TestHarness:
    @pytest.fixture(scope="class")
    def dataset(self, clustered_data, clustered_queries):
        return Dataset(
            name="unit", base=clustered_data, queries=clustered_queries
        )

    @pytest.fixture(scope="class")
    def experiment(self, dataset, tmp_path_factory):
        from repro.sparklite.cluster import LocalCluster
        from repro.storage.hdfs import LocalHdfs

        fs = LocalHdfs(tmp_path_factory.mktemp("hdfs"))
        cluster = LocalCluster(num_executors=4, fs=fs)
        config = LannsConfig(
            num_shards=1,
            num_segments=2,
            segmenter="rh",
            hnsw=FAST_HNSW,
            segmenter_sample_size=600,
        )
        return build_partitioned(dataset, config, fs, cluster)

    def test_build_records_metrics(self, experiment):
        assert experiment.build_metrics.tasks
        assert experiment.manifest.total_vectors == 600

    def test_query_and_recall(self, experiment):
        result, recalls = query_experiment(
            experiment, top_k=10, ks=[1, 10], ef=64
        )
        assert set(recalls) == {1, 10}
        assert recalls[10] > 0.5  # RH loses recall but not everything

    def test_evaluate_recall_vs_truth(self, dataset, clustered_truth):
        perfect = evaluate_recall(dataset, clustered_truth[:, :10], [1, 5, 10])
        assert perfect == {1: 1.0, 5: 1.0, 10: 1.0}

    def test_swap_segmenter_reuses_builds(self, experiment, dataset):
        index = experiment.load_index()
        wider = learn_segmenter(
            dataset.base,
            "rh",
            2,
            alpha=0.3,
            spill_mode="virtual",
            seed=experiment.config.seed,
        )
        swapped = swap_segmenter(index, wider)
        # Same stored vectors, different query fan-out.
        assert len(swapped) == len(index)
        original_fanout = np.mean(
            [len(r) for r in index.segmenter.route_query_batch(dataset.queries)]
        )
        swapped_fanout = np.mean(
            [len(r) for r in swapped.segmenter.route_query_batch(dataset.queries)]
        )
        assert swapped_fanout >= original_fanout

    def test_swap_segmenter_validation(self, experiment, dataset):
        index = experiment.load_index()
        wrong_count = learn_segmenter(dataset.base, "rh", 4, seed=0)
        with pytest.raises(ValueError, match="segments"):
            swap_segmenter(index, wrong_count)
