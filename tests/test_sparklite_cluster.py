"""Tests for the sparklite cluster: execution, failures, checkpoints."""

import pytest

from repro.errors import ClusterError, StageTimeoutError
from repro.sparklite.cluster import LocalCluster
from repro.storage.hdfs import LocalHdfs


def make_tasks(n):
    return [lambda value=i: value * 10 for i in range(n)]


class TestBasicExecution:
    def test_results_in_task_order(self):
        cluster = LocalCluster(num_executors=3)
        outcome = cluster.run_tasks(make_tasks(7), stage="simple")
        assert outcome.results == [0, 10, 20, 30, 40, 50, 60]

    def test_empty_task_list(self):
        cluster = LocalCluster()
        outcome = cluster.run_tasks([], stage="empty")
        assert outcome.results == []
        assert outcome.metrics.tasks == []

    def test_metrics_recorded(self):
        cluster = LocalCluster(num_executors=2)
        outcome = cluster.run_tasks(make_tasks(5), stage="metered")
        metrics = outcome.metrics
        assert metrics.stage == "metered"
        assert len(metrics.tasks) == 5
        assert metrics.wall_time > 0
        assert metrics.total_task_time >= 0
        assert metrics.failures == 0
        assert all(task.attempts == 1 for task in metrics.tasks)

    def test_stage_history_accumulates(self):
        cluster = LocalCluster()
        cluster.run_tasks(make_tasks(2), stage="first")
        cluster.run_tasks(make_tasks(2), stage="second")
        assert [stage.stage for stage in cluster.stages] == ["first", "second"]
        assert cluster.last_stage().stage == "second"

    def test_last_stage_requires_history(self):
        with pytest.raises(ClusterError):
            LocalCluster().last_stage()

    def test_threads_mode_same_results(self):
        inline = LocalCluster(num_executors=4, mode="inline")
        threaded = LocalCluster(num_executors=4, mode="threads")
        tasks = make_tasks(9)
        assert (
            inline.run_tasks(tasks, stage="a").results
            == threaded.run_tasks(tasks, stage="b").results
        )

    def test_makespan_available_per_stage(self):
        cluster = LocalCluster(num_executors=2)
        outcome = cluster.run_tasks(make_tasks(6), stage="spanned")
        assert outcome.metrics.makespan(1) >= outcome.metrics.makespan(4)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_executors": 0},
            {"mode": "spark"},
            {"failure_rate": 1.0},
            {"failure_rate": -0.1},
            {"max_rounds": 0},
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            LocalCluster(**kwargs)

    def test_checkpoint_requires_fs(self):
        cluster = LocalCluster()
        with pytest.raises(ClusterError, match="filesystem"):
            cluster.run_tasks(make_tasks(2), stage="x", checkpoint=True)


class TestFailureInjection:
    def test_zero_failure_rate_single_round(self):
        cluster = LocalCluster(num_executors=2, failure_rate=0.0)
        outcome = cluster.run_tasks(make_tasks(8), stage="clean")
        assert outcome.metrics.rounds == 1

    def test_retries_eventually_succeed_at_low_rate(self):
        cluster = LocalCluster(
            num_executors=4, failure_rate=0.05, max_rounds=20, seed=3
        )
        outcome = cluster.run_tasks(make_tasks(20), stage="flaky")
        assert outcome.results == [i * 10 for i in range(20)]

    def test_deterministic_failures_with_seed(self):
        a = LocalCluster(num_executors=4, failure_rate=0.3, max_rounds=30, seed=9)
        b = LocalCluster(num_executors=4, failure_rate=0.3, max_rounds=30, seed=9)
        out_a = a.run_tasks(make_tasks(12), stage="det")
        out_b = b.run_tasks(make_tasks(12), stage="det")
        assert out_a.metrics.failures == out_b.metrics.failures
        assert out_a.metrics.rounds == out_b.metrics.rounds

    def test_cascading_failures_time_out_without_checkpoint(self):
        """Section 5.3.1: high failure rates + few retry rounds + no
        checkpointing -> the stage never stabilises."""
        cluster = LocalCluster(
            num_executors=4, failure_rate=0.6, max_rounds=3, seed=11
        )
        with pytest.raises(StageTimeoutError, match="checkpoint"):
            cluster.run_tasks(make_tasks(24), stage="doomed")

    def test_checkpointing_prevents_cascade(self, tmp_path):
        """Same failure stream, checkpointing on: progress is durable and
        the stage completes."""
        fs = LocalHdfs(tmp_path / "hdfs")
        cluster = LocalCluster(
            num_executors=4,
            failure_rate=0.6,
            max_rounds=30,
            seed=11,
            fs=fs,
        )
        outcome = cluster.run_tasks(
            make_tasks(24), stage="saved", checkpoint=True
        )
        assert outcome.results == [i * 10 for i in range(24)]
        assert outcome.metrics.failures > 0  # failures happened but were absorbed

    def test_checkpoint_temp_path_cleaned_after_stage(self, tmp_path):
        fs = LocalHdfs(tmp_path / "hdfs")
        cluster = LocalCluster(
            num_executors=2, failure_rate=0.2, max_rounds=20, seed=1, fs=fs
        )
        cluster.run_tasks(make_tasks(6), stage="tidy", checkpoint=True)
        assert fs.ls_recursive("_tmp") == []

    def test_attempts_counted(self):
        cluster = LocalCluster(
            num_executors=2, failure_rate=0.4, max_rounds=40, seed=5
        )
        outcome = cluster.run_tasks(make_tasks(10), stage="attempts")
        assert max(task.attempts for task in outcome.metrics.tasks) > 1


def square_task(value):
    """Module-level (picklable) task body for processes-mode tests."""
    return value * value


def make_picklable_tasks(n):
    from functools import partial

    return [partial(square_task, i) for i in range(n)]


class TestProcessesMode:
    def test_results_match_inline(self):
        inline = LocalCluster(num_executors=3, mode="inline")
        procs = LocalCluster(num_executors=3, mode="processes")
        tasks = make_picklable_tasks(9)
        assert (
            procs.run_tasks(tasks, stage="p").results
            == inline.run_tasks(tasks, stage="i").results
        )

    def test_failure_injection_parity_with_inline(self):
        """Same seed => same fates, retries, failure counts and results."""
        outcomes = {}
        for mode in ("inline", "processes"):
            cluster = LocalCluster(
                num_executors=4,
                mode=mode,
                failure_rate=0.3,
                max_rounds=40,
                seed=11,
            )
            outcomes[mode] = cluster.run_tasks(
                make_picklable_tasks(12), stage=mode
            )
        inline, procs = outcomes["inline"], outcomes["processes"]
        assert procs.results == inline.results
        assert procs.metrics.failures == inline.metrics.failures
        assert procs.metrics.rounds == inline.metrics.rounds
        assert [t.attempts for t in procs.metrics.tasks] == [
            t.attempts for t in inline.metrics.tasks
        ]

    def test_checkpointing_under_processes(self, tmp_path):
        fs = LocalHdfs(tmp_path / "hdfs")
        cluster = LocalCluster(
            num_executors=4,
            mode="processes",
            failure_rate=0.6,
            max_rounds=30,
            seed=11,
            fs=fs,
        )
        outcome = cluster.run_tasks(
            make_picklable_tasks(16), stage="saved", checkpoint=True
        )
        assert outcome.results == [i * i for i in range(16)]
        assert outcome.metrics.failures > 0
        assert fs.ls_recursive("_tmp") == []

    def test_cascade_times_out_like_inline(self):
        for mode in ("inline", "processes"):
            cluster = LocalCluster(
                num_executors=2,
                mode=mode,
                failure_rate=0.9,
                max_rounds=3,
                seed=0,
            )
            with pytest.raises(StageTimeoutError):
                cluster.run_tasks(make_picklable_tasks(8), stage="doomed")

    def test_single_task_runs_inline(self):
        # The pool is only spun up for len(pending) > 1; a single task
        # (even an unpicklable closure) executes in-process.
        cluster = LocalCluster(num_executors=2, mode="processes")
        outcome = cluster.run_tasks([lambda: 42], stage="one")
        assert outcome.results == [42]
