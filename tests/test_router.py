"""Router tests: margin scoring, spill routing, and broker integration.

The router embeds the index's trained segmenter and maps each query to
its top-``spill`` segments by hyperplane margin; under the
segment-aligned build layout the broker then fans out only to the shard
groups hosting those segments.  Pinned here:

- margin-scored top-segment sets are *nested* as spill grows, and the
  top-1 segment is the segmenter's natural no-spill route;
- ``spill="all"`` (and ``spill=None``) through the broker is
  bit-identical to the manual per-shard search + level-2 merge -- the
  pre-router serving path;
- recall against exact ground truth is monotone non-decreasing in
  ``spill`` (nested probe sets + batch-invariant lockstep searches);
- segments empty on every shard route nowhere (occupancy pruning), and
  rows routed nowhere come back as fully-padded sentinel rows, not
  errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import ConfigError, LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.offline.brute_force import exact_top_k
from repro.online.broker import Broker
from repro.online.router import Router
from repro.online.searcher import SearcherNode
from repro.online.types import SearchRequest
from tests.conftest import FAST_HNSW, make_clustered

NUM_SHARDS = 4
TOP_K = 10


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=NUM_SHARDS,
        num_segments=NUM_SHARDS,
        sharding="segment",
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=500,
        seed=11,
    )


@pytest.fixture(scope="module")
def corpus():
    return make_clustered(900, 16, seed=31)


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(32)
    rows = rng.integers(0, corpus.shape[0], size=32)
    noise = rng.normal(scale=0.2, size=(32, corpus.shape[1]))
    return (corpus[rows] + noise).astype(np.float32)


@pytest.fixture(scope="module")
def index(corpus, config):
    return build_lanns_index(corpus, config=config)


@pytest.fixture(scope="module")
def broker(index, config):
    nodes = [SearcherNode(shard_id) for shard_id in range(NUM_SHARDS)]
    for shard_id, node in enumerate(nodes):
        node.host("r", index.shards[shard_id])
    broker = Broker(
        nodes,
        config,
        segmenter=index.segmenter,
        segment_sizes=[shard.segment_sizes for shard in index.shards],
    )
    yield broker
    broker.close()


class TestSegmentAlignedBuild:
    def test_layout_is_diagonal(self, index):
        """Shard s hosts exactly segment s (plus spill duplicates)."""
        for shard_id, shard in enumerate(index.shards):
            for segment_id, size in enumerate(shard.segment_sizes):
                if segment_id != shard_id:
                    assert size == 0, (
                        f"shard {shard_id} hosts off-diagonal segment "
                        f"{segment_id}"
                    )
            assert shard.segment_sizes[shard_id] > 0

    def test_segment_sharding_requires_matching_counts(self):
        with pytest.raises(ConfigError, match="num_shards == num_segments"):
            LannsConfig(num_shards=2, num_segments=4, sharding="segment")


class TestMarginScoring:
    def test_top1_matches_natural_route(self, index, queries):
        margins = index.segmenter.leaf_margins(queries)
        assert margins.shape == (queries.shape[0], NUM_SHARDS)
        natural = index.segmenter.route_query_batch(queries)
        for row in range(queries.shape[0]):
            assert int(np.argmax(margins[row])) in natural[row]

    def test_top_segment_sets_are_nested(self, index, queries):
        router = Router(index.segmenter, NUM_SHARDS)
        previous = None
        for spill in range(1, NUM_SHARDS + 1):
            routes = router.top_segments(queries, spill)
            assert all(len(route) == spill for route in routes)
            if previous is not None:
                for small, large in zip(previous, routes):
                    assert set(small) <= set(large)
            previous = routes

    def test_spill_capped_at_segment_count(self, index, queries):
        router = Router(index.segmenter, NUM_SHARDS)
        routes = router.top_segments(queries, NUM_SHARDS + 7)
        assert all(len(route) == NUM_SHARDS for route in routes)

    def test_spill_must_be_positive(self, index, queries):
        router = Router(index.segmenter, NUM_SHARDS)
        with pytest.raises(ValueError, match="spill"):
            router.top_segments(queries, 0)


class TestSpillAllParity:
    def test_spill_all_bit_identical_to_manual_merge(
        self, broker, index, queries
    ):
        budget = broker.per_shard_budget(TOP_K)
        parts = [
            shard.search_batch(queries, budget) for shard in index.shards
        ]
        want_ids, want_dists = merge_shard_results_batch(parts, TOP_K)
        for spill in (None, "all"):
            response = broker.execute(
                SearchRequest(
                    queries=queries, top_k=TOP_K, index_name="r", spill=spill
                )
            )
            np.testing.assert_array_equal(response.ids, want_ids)
            np.testing.assert_array_equal(response.dists, want_dists)
            assert (response.shards_answered == NUM_SHARDS).all()
            assert (response.shards_routed == NUM_SHARDS).all()
            assert response.degraded_rows == 0
            assert response.fully_answered

    def test_legacy_shim_matches_execute(self, broker, queries):
        response = broker.execute(
            SearchRequest(queries=queries, top_k=TOP_K, index_name="r")
        )
        ids, dists = broker.search_batch("r", queries, TOP_K)
        np.testing.assert_array_equal(ids, response.ids)
        np.testing.assert_array_equal(dists, response.dists)


class TestSpillRouting:
    def test_recall_monotone_in_spill(self, broker, corpus, queries):
        truth, _ = exact_top_k(corpus, queries, TOP_K)

        def recall_of(ids):
            hits = sum(
                len(set(row_ids[row_ids >= 0]) & set(row_truth))
                for row_ids, row_truth in zip(ids, truth)
            )
            return hits / truth.size

        recalls = []
        for spill in (1, 2, NUM_SHARDS):
            response = broker.execute(
                SearchRequest(
                    queries=queries, top_k=TOP_K, index_name="r", spill=spill
                )
            )
            assert (response.shards_routed == spill).all()
            assert (response.shards_answered == spill).all()
            recalls.append(recall_of(response.ids))
        assert recalls == sorted(recalls), (
            f"recall must be monotone in spill, got {recalls}"
        )
        # Meaningful routing: even spill=1 finds most true neighbors on
        # clustered data, and full spill probes a superset of every
        # shard's natural route, so it cannot lose to the unrouted path.
        assert recalls[0] > 0.5
        unrouted = broker.execute(
            SearchRequest(queries=queries, top_k=TOP_K, index_name="r")
        )
        assert recalls[-1] >= recall_of(unrouted.ids)

    def test_routed_rows_receive_full_top_k(self, broker, queries):
        # Every diagonal segment holds far more than TOP_K points, so a
        # spill=1 answer must fill all TOP_K slots.  Regression: the
        # per-shard budget used to be sized from the full deployment
        # width (4 groups -> budget 6 for top_k=10) even though the plan
        # queried a single group, truncating every routed answer.
        for spill in (1, 2):
            response = broker.execute(
                SearchRequest(
                    queries=queries, top_k=TOP_K, index_name="r", spill=spill
                )
            )
            assert (response.ids >= 0).all()
            assert np.isfinite(response.dists).all()

    def test_routing_hints_require_spill(self, queries):
        with pytest.raises(ValueError, match="routing_hints"):
            SearchRequest(
                queries=queries[:1],
                top_k=TOP_K,
                index_name="r",
                routing_hints=[(0,)],
            )
        with pytest.raises(ValueError, match="routing_hints"):
            SearchRequest(
                queries=queries[:1],
                top_k=TOP_K,
                index_name="r",
                spill="all",
                routing_hints=[(0,)],
            )

    def test_routed_fanout_prunes_shard_groups(self, broker, queries):
        response = broker.execute(
            SearchRequest(
                queries=queries, top_k=TOP_K, index_name="r", spill=1
            )
        )
        assert (response.shards_routed == 1).all()
        assert response.replicas_used is not None
        plan = broker.router.plan(queries, 1)
        assert plan.groups_queried < NUM_SHARDS or len(
            {route[0] for route in broker.router.top_segments(queries, 1)}
        ) == NUM_SHARDS

    def test_routed_requests_bypass_the_cache(self, index, config, queries):
        nodes = [SearcherNode(shard_id) for shard_id in range(NUM_SHARDS)]
        for shard_id, node in enumerate(nodes):
            node.host("r", index.shards[shard_id])
        broker = Broker(
            nodes,
            config,
            cache_size=64,
            segmenter=index.segmenter,
            segment_sizes=[shard.segment_sizes for shard in index.shards],
        )
        try:
            request = SearchRequest(
                queries=queries[:4], top_k=TOP_K, index_name="r", spill=1
            )
            broker.execute(request)
            broker.execute(request)
            assert broker.cache.stats.as_dict()["hits"] == 0
        finally:
            broker.close()

    def test_routed_request_without_router_raises(self, index, config):
        nodes = [SearcherNode(shard_id) for shard_id in range(NUM_SHARDS)]
        for shard_id, node in enumerate(nodes):
            node.host("r", index.shards[shard_id])
        broker = Broker(nodes, config)
        try:
            with pytest.raises(ValueError, match="router"):
                broker.execute(
                    SearchRequest(
                        queries=np.zeros((1, 16), np.float32),
                        top_k=5,
                        index_name="r",
                        spill=1,
                    )
                )
        finally:
            broker.close()


class TestEmptySegmentRouting:
    def test_unhosted_segments_route_nowhere(self, index, queries):
        # Segment 2 is empty on EVERY shard: occupancy pruning must drop
        # it from the fan-out instead of asking a shard for nothing.
        sizes = [[10, 10, 0, 10] for _ in range(NUM_SHARDS)]
        router = Router(index.segmenter, NUM_SHARDS, segment_sizes=sizes)
        plan = router.plan(queries[:3], 1, hints=[(2,), (2,), (2,)])
        assert plan.shard_rows == {}
        assert (plan.routed_counts == 0).all()

    def test_rows_routed_nowhere_return_sentinels(self, broker, queries):
        response = broker.execute(
            SearchRequest(
                queries=queries[:2],
                top_k=TOP_K,
                index_name="r",
                spill=1,
                # Hint both rows at a segment the occupancy table shows
                # on exactly one shard; empty-hint rows use (): nothing
                # is queried for them.
                routing_hints=[(0,), ()],
            )
        )
        assert response.shards_routed.tolist() == [1, 0]
        assert (response.ids[1] == -1).all()
        assert np.isinf(response.dists[1]).all()
        assert response.shards_answered[1] == 0

    def test_hint_out_of_range_raises(self, broker, queries):
        with pytest.raises(ValueError, match="segment"):
            broker.execute(
                SearchRequest(
                    queries=queries[:1],
                    top_k=TOP_K,
                    index_name="r",
                    spill=1,
                    routing_hints=[(NUM_SHARDS + 3,)],
                )
            )

    def test_empty_segment_on_one_shard_still_served_by_probes(
        self, broker, queries
    ):
        """Under the diagonal layout a spilled query probes segment g on
        shard g even when the query's *natural* segment is absent there
        -- the probe push-down, without which spill would find nothing."""
        response = broker.execute(
            SearchRequest(
                queries=queries, top_k=TOP_K, index_name="r", spill=2
            )
        )
        # Every row got answers from both routed groups: at least one
        # more result row than the single-segment route could return
        # overall, and no row degraded.
        assert response.degraded_rows == 0
        assert (response.shards_answered == 2).all()
