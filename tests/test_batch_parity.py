"""Equivalence tests for the batched query engine.

The batched path must be a pure throughput optimisation: every layer's
``search_batch`` has to return *identical* ids and distances to looping
the single-query ``search`` over the same queries, because both run the
same lockstep kernel and the scoring primitives are batch-composition
invariant.  These tests pin that contract at the HNSW, shard, index,
broker and service levels, plus the batch-merge primitive underneath.
"""

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.core.topk import batch_top_k
from repro.distance.scorer import Scorer
from repro.hnsw.index import build_hnsw
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def hnsw(clustered_data):
    return build_hnsw(clustered_data, params=FAST_HNSW)


@pytest.fixture(scope="module")
def lanns(clustered_data):
    config = LannsConfig(
        num_shards=2,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=11,
    )
    return build_lanns_index(clustered_data, config=config)


@pytest.fixture(scope="module")
def broker(lanns):
    searchers = [SearcherNode(0), SearcherNode(1)]
    for shard_id, searcher in enumerate(searchers):
        searcher.host("main", lanns.shards[shard_id])
    return Broker(searchers, lanns.config)


class TestScorerBatchKernels:
    def test_prepare_queries_matches_prepare_query(self, clustered_data):
        for metric in ("euclidean", "cosine", "inner_product"):
            scorer = Scorer(metric, clustered_data.shape[1])
            scorer.add(clustered_data[:50])
            batch = scorer.prepare_queries(clustered_data[50:60])
            for row in range(10):
                single = scorer.prepare_query(clustered_data[50 + row])
                np.testing.assert_array_equal(batch[row], single)

    def test_score_pairs_is_batch_invariant(self, clustered_data):
        """The same (query, id) pair scores identically in any batch."""
        rng = np.random.default_rng(0)
        for metric in ("euclidean", "cosine", "inner_product"):
            scorer = Scorer(metric, clustered_data.shape[1])
            scorer.add(clustered_data[:100])
            queries = scorer.prepare_queries(clustered_data[100:108])
            query_sq = scorer.query_sq_norms(queries)
            query_rows = rng.integers(0, 8, size=40)
            ids = rng.integers(0, 100, size=40)
            full = scorer.score_pairs(queries, query_rows, ids, query_sq)
            for pair in range(40):
                one_query = queries[query_rows[pair]][np.newaxis, :]
                alone = scorer.score_pairs(
                    one_query,
                    np.zeros(1, dtype=np.int64),
                    ids[pair : pair + 1],
                    scorer.query_sq_norms(one_query),
                )
                assert alone[0] == full[pair], (metric, pair)

    def test_score_all_batch_matches_score_all(self, clustered_data):
        for metric in ("euclidean", "cosine", "inner_product"):
            scorer = Scorer(metric, clustered_data.shape[1])
            scorer.add(clustered_data[:80])
            queries = scorer.prepare_queries(clustered_data[80:85])
            block = scorer.score_all_batch(queries)
            assert block.shape == (5, 80)
            for row in range(5):
                np.testing.assert_allclose(
                    block[row],
                    scorer.score_all(queries[row]),
                    rtol=1e-5,
                    atol=1e-4,
                )


class TestBatchTopK:
    def test_sorts_and_pads(self):
        ids = np.array([[3, 1, 2], [7, -1, -1]], dtype=np.int64)
        dists = np.array([[0.3, 0.1, 0.2], [0.5, np.inf, np.inf]])
        out_ids, out_dists = batch_top_k(dists, ids, 2)
        np.testing.assert_array_equal(out_ids, [[1, 2], [7, -1]])
        np.testing.assert_array_equal(out_dists, [[0.1, 0.2], [0.5, np.inf]])

    def test_dedupe_keeps_best_distance(self):
        ids = np.array([[4, 4, 9]], dtype=np.int64)
        dists = np.array([[0.8, 0.2, 0.5]])
        out_ids, out_dists = batch_top_k(dists, ids, 3)
        np.testing.assert_array_equal(out_ids, [[4, 9, -1]])
        np.testing.assert_array_equal(out_dists, [[0.2, 0.5, np.inf]])

    def test_tie_break_by_id(self):
        ids = np.array([[9, 2, 5]], dtype=np.int64)
        dists = np.array([[0.5, 0.5, 0.5]])
        out_ids, _ = batch_top_k(dists, ids, 3)
        np.testing.assert_array_equal(out_ids, [[2, 5, 9]])

    def test_no_cross_row_dedupe(self):
        """The same id in different rows must survive in both."""
        ids = np.array([[6, -1], [6, -1]], dtype=np.int64)
        dists = np.array([[0.4, np.inf], [0.9, np.inf]])
        out_ids, out_dists = batch_top_k(dists, ids, 1)
        np.testing.assert_array_equal(out_ids, [[6], [6]])
        np.testing.assert_array_equal(out_dists, [[0.4], [0.9]])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            batch_top_k(np.zeros((1, 1)), np.zeros((1, 1), np.int64), 0)

    def test_no_cross_row_key_collision_with_negative_ids(self):
        """Arbitrary int ids must not alias across rows in the dedupe."""
        ids = np.array([[3, 1], [-2, 0]], dtype=np.int64)
        dists = np.array([[0.1, 0.2], [0.3, 0.1]])
        out_ids, out_dists = batch_top_k(dists, ids, 2)
        np.testing.assert_array_equal(out_ids, [[3, 1], [0, -2]])
        np.testing.assert_array_equal(out_dists, [[0.1, 0.2], [0.1, 0.3]])

    def test_huge_ids_no_overflow(self):
        """Snowflake-scale int64 ids must dedupe without key overflow."""
        huge = 2**62 - 1
        ids = np.tile(np.array([[huge, 0, -1]], dtype=np.int64), (5, 1))
        dists = np.tile(np.array([[0.2, 0.3, np.inf]]), (5, 1))
        out_ids, out_dists = batch_top_k(dists, ids, 2)
        np.testing.assert_array_equal(out_ids, np.tile([[huge, 0]], (5, 1)))
        np.testing.assert_array_equal(out_dists, np.tile([[0.2, 0.3]], (5, 1)))


class TestHnswBatchParity:
    @pytest.mark.parametrize("k,ef", [(1, None), (5, 32), (10, 64)])
    def test_batch_equals_single_loop(self, hnsw, clustered_queries, k, ef):
        batch_ids, batch_dists = hnsw.search_batch(clustered_queries, k, ef=ef)
        for row, query in enumerate(clustered_queries):
            single_ids, single_dists = hnsw.search(query, k, ef=ef)
            count = len(single_ids)
            np.testing.assert_array_equal(batch_ids[row, :count], single_ids)
            np.testing.assert_array_equal(
                batch_dists[row, :count], single_dists
            )
            assert (batch_ids[row, count:] == -1).all()

    def test_batch_composition_invariant(self, hnsw, clustered_queries):
        """Chunking the stream differently must not change any result."""
        whole_ids, whole_dists = hnsw.search_batch(clustered_queries, 8, ef=48)
        chunked_ids = np.concatenate(
            [
                hnsw.search_batch(clustered_queries[start : start + 7], 8, ef=48)[0]
                for start in range(0, len(clustered_queries), 7)
            ]
        )
        np.testing.assert_array_equal(whole_ids, chunked_ids)
        assert whole_dists.shape == (len(clustered_queries), 8)

    @pytest.mark.parametrize("metric", ["cosine", "inner_product"])
    def test_batch_parity_other_metrics(
        self, metric, clustered_data, clustered_queries
    ):
        index = build_hnsw(
            clustered_data[:300], metric=metric, params=FAST_HNSW
        )
        batch_ids, batch_dists = index.search_batch(
            clustered_queries[:10], 5, ef=48
        )
        for row in range(10):
            single_ids, single_dists = index.search(
                clustered_queries[row], 5, ef=48
            )
            np.testing.assert_array_equal(batch_ids[row], single_ids)
            np.testing.assert_array_equal(batch_dists[row], single_dists)

    def test_empty_batch(self, hnsw):
        ids, dists = hnsw.search_batch(
            np.empty((0, hnsw.dim), dtype=np.float32), 5
        )
        assert ids.shape == (0, 5)
        assert dists.shape == (0, 5)

    def test_batch_larger_than_lockstep_group(self, hnsw, clustered_queries):
        """Batches above the internal lockstep cap chunk transparently."""
        from repro.hnsw.index import _MAX_LOCKSTEP

        big = np.tile(clustered_queries, (2, 1))[: _MAX_LOCKSTEP + 11]
        batch_ids, _ = hnsw.search_batch(big, 5, ef=48)
        assert batch_ids.shape == (_MAX_LOCKSTEP + 11, 5)
        for row in (0, _MAX_LOCKSTEP - 1, _MAX_LOCKSTEP, _MAX_LOCKSTEP + 10):
            single_ids, _ = hnsw.search(big[row], 5, ef=48)
            np.testing.assert_array_equal(batch_ids[row], single_ids)

    def test_negative_external_ids_rejected(self, clustered_data):
        """-1 is the batch padding sentinel, so ids must be >= 0."""
        from repro.hnsw.index import HnswIndex

        index = HnswIndex(dim=clustered_data.shape[1], params=FAST_HNSW)
        with pytest.raises(ValueError, match="non-negative"):
            index.add(clustered_data[:2], ids=np.array([-1, 4]))

    def test_negative_ids_rejected_on_load(self, clustered_data):
        """from_arrays enforces the same id invariant as add()."""
        from repro.hnsw.index import HnswIndex

        index = build_hnsw(clustered_data[:20], params=FAST_HNSW)
        payload = index.to_arrays()
        payload["external_ids"] = payload["external_ids"] - 5
        with pytest.raises(ValueError, match="negative external ids"):
            HnswIndex.from_arrays(payload)

    def test_single_row_batch(self, hnsw, clustered_queries):
        ids, dists = hnsw.search_batch(clustered_queries[:1], 6, ef=48)
        single_ids, single_dists = hnsw.search(clustered_queries[0], 6, ef=48)
        assert ids.shape == (1, 6)
        np.testing.assert_array_equal(ids[0], single_ids)
        np.testing.assert_array_equal(dists[0], single_dists)


class TestLannsIndexBatchParity:
    def test_query_batch_equals_query_loop(self, lanns, clustered_queries):
        batch_ids, batch_dists = lanns.query_batch(
            clustered_queries, 10, ef=48
        )
        for row, query in enumerate(clustered_queries):
            single_ids, single_dists = lanns.query(query, 10, ef=48)
            count = len(single_ids)
            np.testing.assert_array_equal(batch_ids[row, :count], single_ids)
            np.testing.assert_array_equal(
                batch_dists[row, :count], single_dists
            )

    def test_shard_search_batch_matches_search(self, lanns, clustered_queries):
        shard = lanns.shards[0]
        batch_ids, batch_dists = shard.search_batch(
            clustered_queries[:15], 7, ef=48
        )
        for row in range(15):
            single = shard.search(clustered_queries[row], 7, ef=48)
            pairs = [
                (float(dist), int(item))
                for dist, item in zip(batch_dists[row], batch_ids[row])
                if item >= 0
            ]
            assert pairs == single

    def test_empty_batch(self, lanns):
        ids, dists = lanns.query_batch(
            np.empty((0, lanns.dim), dtype=np.float32), 4
        )
        assert ids.shape == (0, 4)
        assert dists.shape == (0, 4)


class TestBrokerBatchParity:
    def test_search_batch_equals_search_loop(self, broker, clustered_queries):
        batch_ids, batch_dists = broker.search_batch(
            "main", clustered_queries, 10, ef=48
        )
        for row, query in enumerate(clustered_queries):
            single_ids, single_dists = broker.search("main", query, 10, ef=48)
            count = len(single_ids)
            np.testing.assert_array_equal(batch_ids[row, :count], single_ids)
            np.testing.assert_array_equal(
                batch_dists[row, :count], single_dists
            )

    def test_parallel_fanout_batch_same_results(
        self, lanns, broker, clustered_queries
    ):
        parallel = Broker(
            broker.searchers, lanns.config, parallel_fanout=True
        )
        sequential_ids, _ = broker.search_batch(
            "main", clustered_queries[:12], 8
        )
        parallel_ids, _ = parallel.search_batch(
            "main", clustered_queries[:12], 8
        )
        np.testing.assert_array_equal(sequential_ids, parallel_ids)

    def test_batch_matches_in_memory_index(
        self, lanns, broker, clustered_queries
    ):
        broker_ids, _ = broker.search_batch("main", clustered_queries, 10)
        index_ids, _ = lanns.query_batch(clustered_queries, 10)
        np.testing.assert_array_equal(broker_ids, index_ids)

    def test_empty_batch(self, lanns, broker):
        ids, dists = broker.search_batch(
            "main", np.empty((0, lanns.dim), dtype=np.float32), 3
        )
        assert ids.shape == (0, 3)
        assert dists.shape == (0, 3)


class TestServiceBatchServing:
    @pytest.fixture
    def service(self, lanns, fs):
        from repro.online.service import OnlineService
        from repro.storage.manifest import save_lanns_index

        save_lanns_index(lanns, fs, "prod/batch")
        service = OnlineService()
        service.deploy(fs, "prod/batch")
        return service

    def test_query_batch_parity(self, service, clustered_queries):
        batch_ids, _ = service.query_batch(clustered_queries[:10], 5)
        for row in range(10):
            single_ids, _ = service.query(clustered_queries[row], 5)
            count = len(single_ids)
            np.testing.assert_array_equal(batch_ids[row, :count], single_ids)

    def test_measure_qps_batch_mode(self, service, clustered_queries):
        stats = service.measure_qps(clustered_queries[:16], 5, batch_size=8)
        assert stats["count"] == 16
        assert stats["batch_size"] == 8
        assert stats["qps"] > 0

    def test_measure_qps_invalid_batch_size(self, service, clustered_queries):
        with pytest.raises(ValueError, match="batch_size"):
            service.measure_qps(clustered_queries[:4], 5, batch_size=0)
