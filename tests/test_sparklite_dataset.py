"""Tests for the sparklite Dataset transformations."""

import pytest

from repro.sparklite.cluster import LocalCluster


@pytest.fixture
def cluster():
    return LocalCluster(num_executors=3)


class TestConstruction:
    def test_partition_sizes_balanced(self, cluster):
        dataset = cluster.parallelize(range(10), num_partitions=3)
        sizes = [len(p) for p in dataset.partitions]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_default_partitions_equals_executors(self, cluster):
        dataset = cluster.parallelize(range(7))
        assert dataset.num_partitions == 3

    def test_empty_items(self, cluster):
        dataset = cluster.parallelize([], num_partitions=4)
        assert dataset.count() == 0
        assert dataset.collect() == []

    def test_invalid_partitions(self, cluster):
        with pytest.raises(ValueError):
            cluster.parallelize([1], num_partitions=0)

    def test_collect_preserves_order(self, cluster):
        dataset = cluster.parallelize(range(11), num_partitions=4)
        assert dataset.collect() == list(range(11))


class TestTransformations:
    def test_map(self, cluster):
        result = cluster.parallelize(range(6)).map(lambda x: x * x).collect()
        assert result == [0, 1, 4, 9, 16, 25]

    def test_filter(self, cluster):
        result = (
            cluster.parallelize(range(10)).filter(lambda x: x % 2 == 0).collect()
        )
        assert result == [0, 2, 4, 6, 8]

    def test_flat_map(self, cluster):
        result = (
            cluster.parallelize([1, 2, 3]).flat_map(lambda x: [x] * x).collect()
        )
        assert result == [1, 2, 2, 3, 3, 3]

    def test_map_partitions(self, cluster):
        dataset = cluster.parallelize(range(9), num_partitions=3)
        result = dataset.map_partitions(lambda part: [sum(part)]).collect()
        assert sum(result) == sum(range(9))
        assert len(result) == 3

    def test_count(self, cluster):
        assert cluster.parallelize(range(13)).count() == 13

    def test_stages_recorded(self, cluster):
        cluster.parallelize(range(4)).map(lambda x: x, stage="mapper")
        assert cluster.last_stage().stage == "mapper"


class TestShuffles:
    def test_repartition_by_key_groups_keys(self, cluster):
        pairs = [(key % 5, key) for key in range(50)]
        dataset = cluster.parallelize(pairs, num_partitions=4)
        shuffled = dataset.repartition_by_key(3)
        # Same key never appears in two partitions.
        for key in range(5):
            holders = [
                index
                for index, part in enumerate(shuffled.partitions)
                if any(row[0] == key for row in part)
            ]
            assert len(holders) == 1
        assert sorted(shuffled.collect()) == sorted(pairs)

    def test_repartition_with_custom_key_fn(self, cluster):
        rows = list(range(30))
        shuffled = cluster.parallelize(rows).repartition_by_key(
            4, key_fn=lambda row: row % 3
        )
        assert sorted(shuffled.collect()) == rows

    def test_group_by_key_within_partition(self, cluster):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("a", 5)]
        grouped = (
            cluster.parallelize(pairs, num_partitions=2)
            .repartition_by_key(2)
            .group_by_key()
            .collect()
        )
        merged = {}
        for key, rows in grouped:
            merged.setdefault(key, []).extend(value for _, value in rows)
        assert sorted(merged["a"]) == [1, 3, 5]
        assert sorted(merged["b"]) == [2, 4]

    def test_repartition_validation(self, cluster):
        with pytest.raises(ValueError):
            cluster.parallelize([(1, 2)]).repartition_by_key(0)
