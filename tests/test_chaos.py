"""Chaos tests: seeded fault injection and recovery under real faults.

:class:`~repro.net.chaos.FaultPlan` is pinned as *deterministic* -- the
seed IS the schedule -- and then used against real in-thread searcher
servers to prove the recovery paths built in PRs 3-10 survive injected
faults rather than merely mocked ones:

- replica failover keeps answering (bit-identically) when one replica
  resets every connection or sheds every request with ``OVERLOADED``;
- a broker facing a fully overloaded group honors the server's
  retry-after hint once before giving up with the structured error;
- a rolling restart under a background of injected resets and delays
  still drops zero queries under the strict ``fail`` policy.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.errors import OverloadedError
from repro.net.chaos import FAULT_KINDS, FaultPlan
from repro.net.server import SearcherServer
from repro.net.transport import AsyncRemoteSearcherTransport
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode
from repro.online.service import OnlineService
from repro.online.types import SearchRequest
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index
from tests.conftest import FAST_HNSW, make_clustered

NUM_SHARDS = 2
INDEX_PATH = "prod/chaotic"


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=NUM_SHARDS,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=400,
        seed=13,
    )


@pytest.fixture(scope="module")
def corpus():
    return make_clustered(500, 16, seed=41)


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(42)
    rows = rng.integers(0, corpus.shape[0], size=16)
    noise = rng.normal(scale=0.2, size=(16, corpus.shape[1]))
    return (corpus[rows] + noise).astype(np.float32)


@pytest.fixture(scope="module")
def shared_fs(tmp_path_factory):
    return LocalHdfs(tmp_path_factory.mktemp("chaos-hdfs"))


@pytest.fixture(scope="module")
def index(corpus, config, shared_fs):
    built = build_lanns_index(corpus, config=config)
    save_lanns_index(built, shared_fs, INDEX_PATH)
    return built


def start_server(shared_fs, shard_id: int, *, port: int = 0, **kwargs):
    return SearcherServer(
        SearcherNode(shard_id),
        port=port,
        root=str(shared_fs.root),
        **kwargs,
    ).start_in_thread()


def connect(address: str, shard_id: int) -> AsyncRemoteSearcherTransport:
    return AsyncRemoteSearcherTransport(
        address, shard_id, timeout_s=10.0, retries=0, pool_size=1
    )


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        rates = dict(
            delay_rate=0.2, reset_rate=0.2, drop_rate=0.1, overload_rate=0.2
        )
        plan_a = FaultPlan(seed=7, **rates)
        plan_b = FaultPlan(seed=7, **rates)
        first = [plan_a.draw() for _ in range(200)]
        second = [plan_b.draw() for _ in range(200)]
        assert first == second
        assert plan_a.snapshot() == plan_b.snapshot()

    def test_different_seed_different_schedule(self):
        rates = dict(delay_rate=0.25, reset_rate=0.25, overload_rate=0.25)
        first = [FaultPlan(seed=1, **rates).draw() for _ in range(200)]
        second = [FaultPlan(seed=2, **rates).draw() for _ in range(200)]
        assert first != second

    def test_rates_respected_roughly(self):
        plan = FaultPlan(seed=3, reset_rate=1.0)
        assert all(plan.draw() == "reset" for _ in range(50))
        quiet = FaultPlan(seed=3)
        assert all(quiet.draw() is None for _ in range(50))

    def test_snapshot_counts_by_kind(self):
        plan = FaultPlan(seed=5, delay_rate=0.5, overload_rate=0.5)
        drawn = [plan.draw() for _ in range(100)]
        snapshot = plan.snapshot()
        assert snapshot["decisions"] == 100
        for kind in FAULT_KINDS:
            assert snapshot["injected"][kind] == drawn.count(kind)

    def test_spec_round_trip(self):
        plan = FaultPlan(
            seed=42, delay_rate=0.1, delay_s=0.02, reset_rate=0.15,
            overload_rate=0.05,
        )
        parsed = FaultPlan.parse(plan.spec())
        assert parsed.seed == plan.seed
        assert parsed.rates == plan.rates
        assert parsed.delay_s == plan.delay_s
        assert [parsed.draw() for _ in range(50)] == [
            plan.draw() for _ in range(50)
        ]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("seed")
        with pytest.raises(ValueError, match="unknown chaos spec key"):
            FaultPlan.parse("seed=1,banana=2")
        with pytest.raises(ValueError, match="invalid chaos spec"):
            FaultPlan.parse("bogus_rate=0.1")

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(reset_rate=1.5)
        with pytest.raises(ValueError, match="sum"):
            FaultPlan(reset_rate=0.6, drop_rate=0.6)
        with pytest.raises(ValueError, match="delay_s"):
            FaultPlan(delay_s=-1.0)


class TestChaosFailover:
    def expected(self, config, shared_fs, queries):
        clean = OnlineService()
        try:
            clean.deploy(shared_fs, INDEX_PATH, index_name="r")
            return clean.query_batch(queries, 5, index_name="r")
        finally:
            clean.close()

    def run_against(
        self, chaotic_server, shared_fs, config, queries, index
    ) -> tuple:
        """Serve through [chaotic, clean] x [clean] groups; return results
        and the broker stats."""
        clean_sibling = start_server(shared_fs, 0)
        other = start_server(shared_fs, 1)
        transports = []
        broker = None
        try:
            for server, shard_id in (
                (chaotic_server, 0), (clean_sibling, 0), (other, 1),
            ):
                transport = connect(server.address, shard_id)
                transport.verify()
                transport.deploy("r", INDEX_PATH, root=str(shared_fs.root))
                transports.append(transport)
            broker = Broker(
                [[transports[0], transports[1]], [transports[2]]],
                config,
                async_fanout=True,
                partial_policy="fail",
            )
            results = [broker.search_batch("r", queries, 5) for _ in range(4)]
            return results, broker.stats()
        finally:
            if broker is not None:
                broker.close()
            for transport in transports:
                transport.close()
            clean_sibling.stop()
            other.stop()

    def test_failover_covers_injected_resets(
        self, shared_fs, config, queries, index
    ):
        chaotic = start_server(
            shared_fs, 0, chaos=FaultPlan(seed=11, reset_rate=1.0)
        )
        try:
            results, stats = self.run_against(
                chaotic, shared_fs, config, queries, index
            )
        finally:
            chaotic.stop()
        want_ids, want_dists = self.expected(config, shared_fs, queries)
        for ids, dists in results:
            np.testing.assert_array_equal(ids, want_ids)
            np.testing.assert_array_equal(dists, want_dists)
        assert stats["failovers"] >= 1

    def test_failover_covers_injected_overload(
        self, shared_fs, config, queries, index
    ):
        chaotic = start_server(
            shared_fs, 0, chaos=FaultPlan(seed=11, overload_rate=1.0)
        )
        try:
            results, stats = self.run_against(
                chaotic, shared_fs, config, queries, index
            )
        finally:
            chaotic.stop()
        want_ids, want_dists = self.expected(config, shared_fs, queries)
        for ids, dists in results:
            np.testing.assert_array_equal(ids, want_ids)
            np.testing.assert_array_equal(dists, want_dists)
        assert stats["failovers"] >= 1

    def test_fully_overloaded_group_waits_retry_after_then_raises(
        self, shared_fs, config, queries, index
    ):
        hint = 0.08
        chaotic = start_server(
            shared_fs,
            0,
            chaos=FaultPlan(seed=11, overload_rate=1.0),
            retry_after_s=hint,
        )
        other = start_server(shared_fs, 1)
        transports = []
        broker = None
        try:
            for server, shard_id in ((chaotic, 0), (other, 1)):
                transport = connect(server.address, shard_id)
                transport.verify()
                transport.deploy("r", INDEX_PATH, root=str(shared_fs.root))
                transports.append(transport)
            broker = Broker(
                [[transports[0]], [transports[1]]],
                config,
                async_fanout=True,
                partial_policy="fail",
            )
            tick = time.monotonic()
            with pytest.raises(OverloadedError):
                broker.search_batch("r", queries, 5)
            elapsed = time.monotonic() - tick
            # One honored retry-after pause, then the structured error
            # (not a timeout) -- the group re-shed on the second lap.
            assert elapsed >= hint
        finally:
            if broker is not None:
                broker.close()
            for transport in transports:
                transport.close()
            chaotic.stop()
            other.stop()


class TestRollingRestartUnderChaos:
    CHAOS = "seed={seed},delay_rate=0.2,delay_s=0.02,reset_rate=0.15"

    @pytest.fixture()
    def grid(self, shared_fs, index):
        """Two replica groups of two chaotic in-thread servers each."""
        servers = [
            [
                start_server(
                    shared_fs,
                    shard,
                    chaos=FaultPlan.parse(
                        self.CHAOS.format(seed=17 + shard * 2 + replica)
                    ),
                )
                for replica in range(2)
            ]
            for shard in range(NUM_SHARDS)
        ]
        yield servers
        for group in servers:
            for server in group:
                server.stop()

    @pytest.fixture()
    def service(self, grid, shared_fs):
        service = OnlineService(
            searchers=[
                [server.address for server in group] for group in grid
            ],
            async_fanout=True,
            partial_policy="fail",
            request_timeout_s=30.0,
        )
        service.deploy(shared_fs, INDEX_PATH)
        yield service
        service.close()

    def test_restart_drops_zero_queries_despite_faults(
        self, grid, service, shared_fs, queries
    ):
        stop = threading.Event()
        errors: list[BaseException] = []
        served = [0]

        def client():
            while not stop.is_set():
                try:
                    response = service.execute(
                        SearchRequest(
                            queries=queries, top_k=5, index_name="default"
                        )
                    )
                except BaseException as exc:
                    errors.append(exc)
                    return
                assert response.fully_answered
                served[0] += 1

        restarted: list[tuple[int, int]] = []

        def restart(shard_id: int, replica_id: int) -> None:
            old = grid[shard_id][replica_id]
            old.stop()
            # The replacement comes back clean: a restart is how an
            # operator *removes* a faulty process from the fleet.
            grid[shard_id][replica_id] = start_server(
                shared_fs, shard_id, port=old.port
            )
            restarted.append((shard_id, replica_id))

        thread = threading.Thread(target=client)
        thread.start()
        try:
            service.rolling_restart(0, restart)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors, (
            f"queries failed during chaotic restart: {errors[:1]!r}"
        )
        assert served[0] > 0
        assert restarted == [(0, 0), (0, 1)]

        def faults_injected() -> int:
            return sum(
                sum(server.chaos.snapshot()["injected"].values())
                for server in (grid[1][0], grid[1][1])
            )

        # Group 1 keeps its chaos plans (only group 0 was restarted):
        # keep traffic flowing until faults demonstrably fire and are
        # absorbed.  A short restart may have seen only lucky draws, so
        # the bound is on draws, not wall time -- at a 35% fault rate,
        # 200 clean draws has probability ~1e-37.
        for _ in range(200):
            if faults_injected() > 0:
                break
            response = service.execute(
                SearchRequest(queries=queries, top_k=5, index_name="default")
            )
            assert response.fully_answered
        assert faults_injected() > 0, (
            "chaos plans on the surviving group never fired"
        )
