"""Tests for the LocalHdfs filesystem abstraction."""

import pytest

from repro.errors import StorageError


class TestReadWrite:
    def test_bytes_roundtrip(self, fs):
        fs.write_bytes("a/b/c.bin", b"\x00\x01\x02")
        assert fs.read_bytes("a/b/c.bin") == b"\x00\x01\x02"

    def test_text_roundtrip(self, fs):
        fs.write_text("notes.txt", "héllo wörld")
        assert fs.read_text("notes.txt") == "héllo wörld"

    def test_json_roundtrip(self, fs):
        payload = {"k": [1, 2, 3], "nested": {"x": "y"}}
        fs.write_json("doc.json", payload)
        assert fs.read_json("doc.json") == payload

    def test_overwrite(self, fs):
        fs.write_text("file", "one")
        fs.write_text("file", "two")
        assert fs.read_text("file") == "two"

    def test_missing_file(self, fs):
        with pytest.raises(StorageError, match="no such file"):
            fs.read_bytes("missing")

    def test_no_temp_files_left_behind(self, fs):
        """Atomic writes must not leak .part files."""
        for index in range(5):
            fs.write_bytes(f"dir/file{index}", b"data")
        leftovers = [
            name for name in fs.ls_recursive("dir") if ".part" in name
        ]
        assert leftovers == []


class TestNamespace:
    def test_exists(self, fs):
        assert not fs.exists("thing")
        fs.write_text("thing", "x")
        assert fs.exists("thing")

    def test_ls_sorted(self, fs):
        fs.write_text("dir/b", "x")
        fs.write_text("dir/a", "x")
        fs.write_text("dir/sub/c", "x")
        assert fs.ls("dir") == ["a", "b", "sub"]

    def test_ls_missing_dir(self, fs):
        assert fs.ls("nowhere") == []

    def test_ls_file_rejected(self, fs):
        fs.write_text("plain", "x")
        with pytest.raises(StorageError, match="not a directory"):
            fs.ls("plain")

    def test_ls_recursive(self, fs):
        fs.write_text("tree/x/1", "a")
        fs.write_text("tree/y/2", "b")
        assert fs.ls_recursive("tree") == ["tree/x/1", "tree/y/2"]

    def test_delete_file_and_tree(self, fs):
        fs.write_text("gone/file", "x")
        assert fs.delete("gone") is True
        assert not fs.exists("gone")
        assert fs.delete("gone") is False

    def test_delete_root_refused(self, fs):
        with pytest.raises(StorageError, match="root"):
            fs.delete("")

    def test_rename(self, fs):
        fs.write_text("old/name", "payload")
        fs.rename("old/name", "new/name")
        assert fs.read_text("new/name") == "payload"
        assert not fs.exists("old/name")

    def test_rename_missing_source(self, fs):
        with pytest.raises(StorageError):
            fs.rename("nope", "somewhere")

    def test_path_escape_rejected(self, fs):
        with pytest.raises(StorageError, match="escapes"):
            fs.write_text("../outside", "x")
        with pytest.raises(StorageError, match="escapes"):
            fs.read_bytes("a/../../outside")


class TestTempPaths:
    def test_make_temp_path_unique(self, fs):
        assert fs.make_temp_path() != fs.make_temp_path()

    def test_temp_path_cleaned_on_exit(self, fs):
        with fs.temp_path("job") as path:
            fs.write_text(f"{path}/partial", "data")
            assert fs.exists(f"{path}/partial")
        assert not fs.exists(path)

    def test_temp_path_cleaned_on_error(self, fs):
        with pytest.raises(RuntimeError):
            with fs.temp_path("job") as path:
                fs.write_text(f"{path}/partial", "data")
                raise RuntimeError("boom")
        assert not fs.exists(path)
