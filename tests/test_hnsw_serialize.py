"""Tests for HNSW persistence: array payloads, files, byte buffers."""

import numpy as np
import pytest

from repro.hnsw.index import HnswIndex, build_hnsw
from repro.hnsw.params import HnswParams
from repro.storage.manifest import hnsw_from_bytes, hnsw_to_bytes
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def small_index(clustered_data):
    return build_hnsw(
        clustered_data[:200],
        ids=np.arange(200) * 3,
        params=FAST_HNSW,
    )


def assert_same_search_behaviour(original, restored, queries):
    for query in queries:
        ids_a, dists_a = original.search(query, 8, ef=48)
        ids_b, dists_b = restored.search(query, 8, ef=48)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(dists_a, dists_b, rtol=1e-6)


class TestArrayRoundtrip:
    def test_structure_preserved(self, small_index):
        restored = HnswIndex.from_arrays(small_index.to_arrays())
        assert len(restored) == len(small_index)
        assert restored.max_level == small_index.max_level
        assert restored.graph.entry_point == small_index.graph.entry_point
        assert restored.graph.levels == small_index.graph.levels
        assert restored.params == small_index.params
        for node in range(len(small_index)):
            for level in range(small_index.graph.levels[node] + 1):
                assert restored.graph.neighbors(node, level) == (
                    small_index.graph.neighbors(node, level)
                )

    def test_search_identical(self, small_index, clustered_queries):
        restored = HnswIndex.from_arrays(small_index.to_arrays())
        assert_same_search_behaviour(
            small_index, restored, clustered_queries[:10]
        )

    def test_external_ids_preserved(self, small_index):
        restored = HnswIndex.from_arrays(small_index.to_arrays())
        np.testing.assert_array_equal(
            restored.external_ids, small_index.external_ids
        )

    def test_empty_index_roundtrip(self):
        index = HnswIndex(dim=6, params=FAST_HNSW)
        restored = HnswIndex.from_arrays(index.to_arrays())
        assert len(restored) == 0
        assert restored.dim == 6

    def test_restored_index_accepts_new_points(self, clustered_data):
        index = build_hnsw(clustered_data[:50], params=FAST_HNSW)
        restored = HnswIndex.from_arrays(index.to_arrays())
        restored.add(clustered_data[50:60])
        assert len(restored) == 60
        restored.graph.check_invariants(
            restored.params.effective_max_m,
            restored.params.effective_max_m0,
        )


class TestFileRoundtrip:
    def test_save_load(self, small_index, clustered_queries, tmp_path):
        path = str(tmp_path / "index.npz")
        small_index.save(path)
        restored = HnswIndex.load(path)
        assert_same_search_behaviour(
            small_index, restored, clustered_queries[:5]
        )


class TestByteRoundtrip:
    def test_bytes_roundtrip(self, small_index, clustered_queries):
        restored = hnsw_from_bytes(hnsw_to_bytes(small_index))
        assert_same_search_behaviour(
            small_index, restored, clustered_queries[:5]
        )

    def test_cosine_index_roundtrip(self, clustered_data, clustered_queries):
        index = build_hnsw(
            clustered_data[:100], metric="cosine", params=FAST_HNSW
        )
        restored = hnsw_from_bytes(hnsw_to_bytes(index))
        assert restored.metric_name == "cosine"
        assert_same_search_behaviour(index, restored, clustered_queries[:5])

    def test_params_survive(self, clustered_data):
        params = HnswParams(M=5, ef_construction=31, ef_search=17, seed=3)
        index = build_hnsw(clustered_data[:40], params=params)
        restored = hnsw_from_bytes(hnsw_to_bytes(index))
        assert restored.params == params
