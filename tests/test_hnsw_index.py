"""End-to-end tests for the HnswIndex: recall, invariants, API contract."""

import numpy as np
import pytest

from repro.errors import IndexNotBuiltError
from repro.hnsw.index import HnswIndex, build_hnsw
from repro.offline.brute_force import exact_top_k
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def built(clustered_data):
    return build_hnsw(clustered_data, params=FAST_HNSW)


class TestConstruction:
    def test_empty_index(self):
        index = HnswIndex(dim=8)
        assert len(index) == 0
        assert index.max_level == -1
        with pytest.raises(IndexNotBuiltError):
            index.search(np.zeros(8, dtype=np.float32), 1)

    def test_incremental_equals_bulk_size(self, clustered_data):
        bulk = build_hnsw(clustered_data[:100], params=FAST_HNSW)
        incremental = HnswIndex(dim=clustered_data.shape[1], params=FAST_HNSW)
        for start in range(0, 100, 10):
            incremental.add(clustered_data[start : start + 10])
        assert len(bulk) == len(incremental) == 100

    def test_duplicate_ids_rejected(self, clustered_data):
        index = HnswIndex(dim=clustered_data.shape[1], params=FAST_HNSW)
        index.add(clustered_data[:5], ids=np.arange(5))
        with pytest.raises(ValueError, match="already present"):
            index.add(clustered_data[5:6], ids=np.array([3]))

    def test_duplicate_ids_within_batch_rejected(self, clustered_data):
        index = HnswIndex(dim=clustered_data.shape[1], params=FAST_HNSW)
        with pytest.raises(ValueError, match="duplicate ids"):
            index.add(clustered_data[:2], ids=np.array([1, 1]))

    def test_auto_ids_continue_after_custom(self, clustered_data):
        index = HnswIndex(dim=clustered_data.shape[1], params=FAST_HNSW)
        index.add(clustered_data[:3], ids=np.array([10, 20, 30]))
        index.add(clustered_data[3:5])
        assert set(index.external_ids.tolist()) == {10, 20, 30, 31, 32}

    def test_id_shape_mismatch_rejected(self, clustered_data):
        index = HnswIndex(dim=clustered_data.shape[1], params=FAST_HNSW)
        with pytest.raises(ValueError, match="shape"):
            index.add(clustered_data[:3], ids=np.arange(4))

    def test_dimension_mismatch_rejected(self):
        index = HnswIndex(dim=4, params=FAST_HNSW)
        with pytest.raises(ValueError):
            index.add(np.ones((2, 5), dtype=np.float32))

    def test_graph_invariants_hold(self, built):
        built.graph.check_invariants(
            built.params.effective_max_m, built.params.effective_max_m0
        )

    def test_level_distribution_is_geometric_ish(self, built):
        """Most nodes live only on the base layer (power-law levels)."""
        levels = np.asarray(built.graph.levels)
        assert (levels == 0).mean() > 0.8
        assert levels.max() >= 1

    def test_deterministic_given_seed(self, clustered_data):
        first = build_hnsw(clustered_data[:150], params=FAST_HNSW)
        second = build_hnsw(clustered_data[:150], params=FAST_HNSW)
        assert first.graph.levels == second.graph.levels
        query = clustered_data[0]
        np.testing.assert_array_equal(
            first.search(query, 5)[0], second.search(query, 5)[0]
        )


class TestSearch:
    def test_high_recall_vs_exact(self, built, clustered_data, clustered_queries, clustered_truth):
        hits = 0
        for query, truth in zip(clustered_queries, clustered_truth):
            ids, _ = built.search(query, 10, ef=64)
            hits += len(set(ids.tolist()) & set(truth[:10].tolist()))
        recall = hits / (len(clustered_queries) * 10)
        assert recall >= 0.95

    def test_nearest_point_to_itself(self, built, clustered_data):
        for row in (0, 17, 311):
            ids, dists = built.search(clustered_data[row], 1, ef=32)
            assert ids[0] == row
            assert dists[0] == pytest.approx(0.0, abs=1e-3)

    def test_distances_ascending_and_true_scale(self, built, clustered_data, clustered_queries):
        query = clustered_queries[0]
        ids, dists = built.search(query, 10)
        assert np.all(np.diff(dists) >= -1e-9)
        direct = np.linalg.norm(clustered_data[ids[0]] - query)
        assert dists[0] == pytest.approx(direct, rel=1e-3)

    def test_k_larger_than_index(self, clustered_data):
        index = build_hnsw(clustered_data[:7], params=FAST_HNSW)
        ids, dists = index.search(clustered_data[0], 20)
        assert len(ids) == 7

    def test_invalid_k(self, built, clustered_queries):
        with pytest.raises(ValueError):
            built.search(clustered_queries[0], 0)

    def test_search_batch_padding(self, clustered_data, clustered_queries):
        index = build_hnsw(clustered_data[:5], params=FAST_HNSW)
        ids, dists = index.search_batch(clustered_queries[:3], 8)
        assert ids.shape == (3, 8)
        assert (ids[:, 5:] == -1).all()
        assert np.isinf(dists[:, 5:]).all()

    def test_search_batch_matches_single(self, built, clustered_queries):
        batch_ids, _ = built.search_batch(clustered_queries[:5], 7, ef=48)
        for row in range(5):
            single_ids, _ = built.search(clustered_queries[row], 7, ef=48)
            np.testing.assert_array_equal(batch_ids[row], single_ids)

    def test_higher_ef_never_lowers_recall_much(self, built, clustered_queries, clustered_truth):
        """ef is the accuracy knob: ef=96 must beat ef=4 on average."""
        def recall(ef):
            hits = 0
            for query, truth in zip(clustered_queries, clustered_truth):
                ids, _ = built.search(query, 10, ef=ef)
                hits += len(set(ids.tolist()) & set(truth[:10].tolist()))
            return hits / (len(clustered_queries) * 10)

        assert recall(96) >= recall(4)

    def test_external_ids_returned(self, clustered_data):
        offset_ids = np.arange(100) + 5000
        index = HnswIndex(dim=clustered_data.shape[1], params=FAST_HNSW)
        index.add(clustered_data[:100], ids=offset_ids)
        ids, _ = index.search(clustered_data[3], 5)
        assert ids[0] == 5003
        assert all(item >= 5000 for item in ids)

    def test_vector_accessor(self, clustered_data):
        index = build_hnsw(clustered_data[:10], params=FAST_HNSW)
        np.testing.assert_array_equal(index.vector(4), clustered_data[4])


class TestMetrics:
    @pytest.mark.parametrize("metric", ["cosine", "inner_product"])
    def test_alternative_metrics_agree_with_exact(self, metric, clustered_data, clustered_queries):
        index = build_hnsw(
            clustered_data[:300], metric=metric, params=FAST_HNSW
        )
        truth, _ = exact_top_k(
            clustered_data[:300], clustered_queries[:10], 5, metric=metric
        )
        hits = 0
        for row in range(10):
            ids, _ = index.search(clustered_queries[row], 5, ef=64)
            hits += len(set(ids.tolist()) & set(truth[row].tolist()))
        assert hits / 50 >= 0.9


class TestBruteForceFallback:
    """`min_graph_size`: tiny indices answer by exact GEMM scan."""

    def make_params(self, threshold: int):
        from dataclasses import replace

        return replace(FAST_HNSW, min_graph_size=threshold)

    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "inner_product"])
    def test_fallback_matches_exact_scan(
        self, metric, clustered_data, clustered_queries
    ):
        data = clustered_data[:120]
        index = build_hnsw(
            data, metric=metric, params=self.make_params(10_000)
        )
        got_ids, got_dists = index.search_batch(clustered_queries, 7)
        want_ids, want_dists = exact_top_k(
            data, clustered_queries, 7, metric=metric
        )
        np.testing.assert_array_equal(got_ids, want_ids)
        # Same math, different float32 accumulation orders (blocked scan
        # vs one GEMM): distances agree to float32 precision, not bits.
        np.testing.assert_allclose(got_dists, want_dists, rtol=1e-4, atol=1e-4)

    def test_single_query_is_batch_of_one(self, clustered_data):
        index = build_hnsw(clustered_data[:50], params=self.make_params(100))
        batch_ids, batch_dists = index.search_batch(clustered_data[:3], 5)
        for row in range(3):
            ids, dists = index.search(clustered_data[row], 5)
            np.testing.assert_array_equal(ids, batch_ids[row])
            np.testing.assert_array_equal(dists, batch_dists[row])

    def test_threshold_boundary_switches_paths(self, clustered_data):
        """At exactly `min_graph_size` vectors the graph path serves; one
        below, the scan does.  Both are exact on well-separated data, so
        the boundary is observed through the distance-op counters."""
        data = clustered_data[:64]
        index = build_hnsw(data, params=self.make_params(len(data)))
        index.reset_distance_ops()
        index.search(data[0], 3)
        graph_ops = index.distance_ops
        fallback = build_hnsw(data, params=self.make_params(len(data) + 1))
        fallback.reset_distance_ops()
        fallback.search(data[0], 3)
        # The scan scores every row exactly once per query.
        assert fallback.distance_ops == len(data)
        assert graph_ops != len(data)

    def test_k_larger_than_corpus_pads(self, clustered_data):
        index = build_hnsw(clustered_data[:6], params=self.make_params(100))
        ids, dists = index.search_batch(clustered_data[:2], 10)
        assert ids.shape == (2, 10)
        assert (ids[:, 6:] == -1).all()
        assert np.isinf(dists[:, 6:]).all()
        assert (ids[:, :6] >= 0).all()

    def test_params_round_trip_preserves_threshold(self, clustered_data):
        from repro.hnsw.params import HnswParams

        params = self.make_params(37)
        assert HnswParams.from_dict(params.to_dict()) == params
        index = build_hnsw(clustered_data[:20], params=params)
        restored = HnswIndex.from_arrays(index.to_arrays())
        assert restored.params.min_graph_size == 37

    def test_shard_routes_tiny_segments_through_scan(
        self, clustered_data, clustered_queries
    ):
        """End to end through a LANNS index: tiny segments served by the
        scan give the same answers as the graph (exact >= approximate,
        and on this corpus both are exact)."""
        from repro.core.builder import build_lanns_index
        from repro.core.config import LannsConfig

        graph_config = LannsConfig(
            num_shards=1,
            num_segments=4,
            segmenter="rh",
            hnsw=FAST_HNSW,
            segmenter_sample_size=600,
            seed=29,
        )
        scan_config = graph_config.with_updates(
            hnsw=self.make_params(10_000)
        )
        graph_index = build_lanns_index(clustered_data, config=graph_config)
        scan_index = build_lanns_index(clustered_data, config=scan_config)
        truth, _ = exact_top_k(clustered_data, clustered_queries, 10)
        scan_ids, _ = scan_index.query_batch(clustered_queries, 10)
        graph_ids, _ = graph_index.query_batch(clustered_queries, 10)
        scan_recall = np.mean(
            [
                len(set(scan_ids[row].tolist()) & set(truth[row].tolist()))
                for row in range(truth.shape[0])
            ]
        ) / 10.0
        graph_recall = np.mean(
            [
                len(set(graph_ids[row].tolist()) & set(truth[row].tolist()))
                for row in range(truth.shape[0])
            ]
        ) / 10.0
        assert scan_recall >= graph_recall
        # Residual misses come from segment *routing* (virtual spill
        # probes 1-2 segments), which the exact scan cannot fix.
        assert scan_recall >= 0.9
