"""Tests for HNSW neighbor selection (simple and heuristic)."""

import numpy as np

from repro.distance.scorer import Scorer
from repro.hnsw.heuristic import (
    select_neighbors_heuristic,
    select_neighbors_simple,
)


def scorer_with(points):
    points = np.asarray(points, dtype=np.float32)
    scorer = Scorer("euclidean", points.shape[1])
    scorer.add(points)
    return scorer


def candidates_for(scorer, query, ids):
    query = scorer.prepare_query(np.asarray(query, dtype=np.float32))
    dists = scorer.score_ids(query, np.asarray(ids))
    return list(zip(dists.tolist(), ids))


class TestSimpleSelection:
    def test_takes_closest_m(self):
        result = select_neighbors_simple(
            [(3.0, 3), (1.0, 1), (2.0, 2)], 2
        )
        assert result == [(1.0, 1), (2.0, 2)]

    def test_handles_short_input(self):
        assert select_neighbors_simple([(1.0, 1)], 5) == [(1.0, 1)]


class TestHeuristicSelection:
    def test_zero_m(self):
        assert select_neighbors_heuristic(scorer_with([[0.0, 0.0]]), [(1.0, 0)], 0) == []

    def test_short_input_passthrough(self):
        scorer = scorer_with([[0.0, 0.0], [1.0, 0.0]])
        candidates = [(1.0, 1), (0.5, 0)]
        assert select_neighbors_heuristic(scorer, candidates, 5) == sorted(
            candidates
        )

    def test_prefers_directional_diversity(self):
        """A tight cluster on one side must not monopolise the links.

        Query at origin; three nearly-identical points to the east and one
        point to the west.  Closest-m would pick the three east points;
        the heuristic must keep the west point because east points 2 and 3
        are closer to east point 1 than to the query.
        """
        points = [
            [1.0, 0.0],     # 0: east
            [1.05, 0.01],   # 1: east, redundant with 0
            [1.1, -0.01],   # 2: east, redundant with 0
            [-1.5, 0.0],    # 3: west, farther but unique direction
        ]
        scorer = scorer_with(points)
        candidates = candidates_for(scorer, [0.0, 0.0], [0, 1, 2, 3])
        selected = select_neighbors_heuristic(
            scorer, candidates, 2, keep_pruned=False
        )
        selected_ids = {node for _, node in selected}
        assert 0 in selected_ids  # the closest point always survives
        assert 3 in selected_ids  # diversity beats redundancy
        simple_ids = {
            node for _, node in select_neighbors_simple(candidates, 2)
        }
        assert 3 not in simple_ids  # and simple selection would miss it

    def test_keep_pruned_pads_to_m(self):
        points = [
            [1.0, 0.0],
            [1.01, 0.0],
            [1.02, 0.0],
            [1.03, 0.0],
        ]
        scorer = scorer_with(points)
        candidates = candidates_for(scorer, [0.0, 0.0], [0, 1, 2, 3])
        padded = select_neighbors_heuristic(
            scorer, candidates, 3, keep_pruned=True
        )
        unpadded = select_neighbors_heuristic(
            scorer, candidates, 3, keep_pruned=False
        )
        assert len(padded) == 3
        assert len(unpadded) < 3  # collinear points all prune each other

    def test_result_bounded_by_m(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 4)).astype(np.float32)
        scorer = scorer_with(points)
        candidates = candidates_for(scorer, rng.normal(size=4), list(range(50)))
        for m in (1, 5, 20):
            assert len(select_neighbors_heuristic(scorer, candidates, m)) <= m

    def test_selected_are_subset_of_candidates(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(30, 3)).astype(np.float32)
        scorer = scorer_with(points)
        ids = list(range(0, 30, 2))
        candidates = candidates_for(scorer, rng.normal(size=3), ids)
        selected = select_neighbors_heuristic(scorer, candidates, 5)
        assert {node for _, node in selected} <= set(ids)
