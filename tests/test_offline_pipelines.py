"""Tests for the offline jobs: learn (Fig 5), index (Fig 6), query (Fig 7)."""

import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.offline.indexing import build_index_job
from repro.offline.learn import learn_segmenter_job, load_learnt_segmenter
from repro.offline.querying import query_index_job
from repro.offline.recall import recall_at_k
from repro.sparklite.cluster import LocalCluster
from repro.storage.manifest import load_lanns_index
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=2,
        num_segments=2,
        segmenter="apd",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=4,
    )


class TestLearnJob:
    def test_learns_and_persists(self, cluster, fs, clustered_data, config):
        segmenter = learn_segmenter_job(
            cluster, fs, clustered_data, config, output_path="segmenters/s1"
        )
        assert segmenter.is_fitted
        restored = load_learnt_segmenter(fs, "segmenters/s1")
        assert restored.route_data_batch(clustered_data[:20]) == (
            segmenter.route_data_batch(clustered_data[:20])
        )
        assert cluster.last_stage().stage == "learn-segmenter"

    def test_no_persistence_without_path(self, cluster, fs, clustered_data, config):
        learn_segmenter_job(cluster, fs, clustered_data, config)
        assert fs.ls_recursive("") == []


class TestBuildJob:
    def test_build_writes_full_layout(self, cluster, fs, clustered_data, config):
        manifest, metrics = build_index_job(
            cluster, fs, clustered_data, config, "idx"
        )
        assert manifest.total_vectors == len(clustered_data)
        assert metrics.stage == "hnsw-build"
        assert len(metrics.tasks) == config.total_partitions
        files = fs.ls_recursive("idx")
        assert "idx/metadata.json" in files
        assert len([f for f in files if f.endswith(".npz")]) == 4

    def test_built_index_loads_and_answers(self, cluster, fs, clustered_data, clustered_queries, clustered_truth, config):
        build_index_job(cluster, fs, clustered_data, config, "idx")
        index = load_lanns_index(fs, "idx")
        hits = 0
        for query, truth in zip(clustered_queries[:20], clustered_truth[:20]):
            ids, _ = index.query(query, 10, ef=64)
            hits += len(set(ids.tolist()) & set(truth[:10].tolist()))
        assert hits / 200 >= 0.85

    def test_shared_segmenter_reused(self, cluster, fs, clustered_data, config):
        segmenter = learn_segmenter_job(cluster, fs, clustered_data, config)
        manifest, _ = build_index_job(
            cluster, fs, clustered_data, config, "idx", segmenter=segmenter
        )
        index = load_lanns_index(fs, "idx")
        assert index.segmenter.route_data_batch(clustered_data[:10]) == (
            segmenter.route_data_batch(clustered_data[:10])
        )

    @pytest.mark.parametrize("mode", ["threads", "processes"])
    def test_execution_mode_parity(
        self, fs, clustered_data, config, mode, tmp_path
    ):
        """Every execution mode writes byte-identical segment files."""
        from repro.storage.hdfs import LocalHdfs

        inline_fs = LocalHdfs(tmp_path / "inline")
        inline_cluster = LocalCluster(num_executors=4, fs=inline_fs)
        inline_manifest, _ = build_index_job(
            inline_cluster, inline_fs, clustered_data, config, "idx"
        )
        other_cluster = LocalCluster(num_executors=4, mode=mode, fs=fs)
        other_manifest, _ = build_index_job(
            other_cluster, fs, clustered_data, config, "idx"
        )
        assert other_manifest.checksums == inline_manifest.checksums

    def test_processes_parity_with_failures_and_checkpoint(
        self, clustered_data, config, tmp_path
    ):
        """Identical output under injected executor deaths + checkpointing."""
        from repro.storage.hdfs import LocalHdfs

        manifests = {}
        for mode in ("inline", "processes"):
            mode_fs = LocalHdfs(tmp_path / mode)
            cluster = LocalCluster(
                num_executors=4,
                mode=mode,
                failure_rate=0.3,
                max_rounds=30,
                seed=7,
                fs=mode_fs,
            )
            manifest, metrics = build_index_job(
                cluster,
                mode_fs,
                clustered_data,
                config,
                "idx",
                checkpoint=True,
            )
            manifests[mode] = (manifest, metrics.failures)
        inline_manifest, inline_failures = manifests["inline"]
        procs_manifest, procs_failures = manifests["processes"]
        assert procs_manifest.checksums == inline_manifest.checksums
        assert procs_failures == inline_failures
        assert inline_failures > 0  # the stream actually injected deaths


class TestQueryJob:
    @pytest.fixture()
    def persisted(self, cluster, fs, clustered_data, config):
        build_index_job(cluster, fs, clustered_data, config, "idx")
        return "idx"

    def test_matches_in_memory_index(
        self, cluster, fs, persisted, clustered_data, clustered_queries, config
    ):
        result = query_index_job(
            cluster, fs, persisted, clustered_queries, top_k=10, ef=64,
            checkpoint=False,
        )
        memory_index = build_lanns_index(clustered_data, config=config)
        memory_ids, _ = memory_index.query_batch(clustered_queries, 10, ef=64)
        agreement = (result.ids == memory_ids).mean()
        assert agreement > 0.99

    def test_three_stages_recorded(self, cluster, fs, persisted, clustered_queries):
        result = query_index_job(
            cluster, fs, persisted, clustered_queries, top_k=5,
            checkpoint=False,
        )
        assert [m.stage for m in result.stages] == [
            "partial-search",
            "segment-merge",
            "shard-merge",
        ]
        assert result.total_makespan(4) <= result.total_makespan(1) + 1e-9
        assert result.stage("partial-search").tasks

    def test_recall_against_truth(
        self, cluster, fs, persisted, clustered_queries, clustered_truth
    ):
        result = query_index_job(
            cluster, fs, persisted, clustered_queries, top_k=10, ef=64,
            checkpoint=False,
        )
        assert recall_at_k(result.ids, clustered_truth, 10) >= 0.85

    def test_output_persisted(self, cluster, fs, persisted, clustered_queries):
        query_index_job(
            cluster, fs, persisted, clustered_queries[:10], top_k=5,
            checkpoint=False, output_path="results/out.npz",
        )
        assert fs.exists("results/out.npz")

    def test_checkpointing_survives_failures(
        self, fs, persisted, clustered_queries, clustered_truth
    ):
        flaky = LocalCluster(
            num_executors=4,
            failure_rate=0.25,
            max_rounds=40,
            seed=13,
            fs=fs,
        )
        result = query_index_job(
            flaky, fs, persisted, clustered_queries, top_k=10, ef=64,
            checkpoint=True,
        )
        assert recall_at_k(result.ids, clustered_truth, 10) >= 0.85
        # Temp checkpoint paths were cleaned.
        assert fs.ls_recursive("_tmp") == []

    def test_invalid_topk(self, cluster, fs, persisted, clustered_queries):
        with pytest.raises(ValueError):
            query_index_job(
                cluster, fs, persisted, clustered_queries, top_k=0
            )

    def test_num_query_partitions_respected(
        self, cluster, fs, persisted, clustered_queries
    ):
        result = query_index_job(
            cluster, fs, persisted, clustered_queries, top_k=5,
            num_query_partitions=5, checkpoint=False,
        )
        merge_tasks = result.stage("shard-merge").tasks
        assert len(merge_tasks) == 5
