"""Asyncio fan-out + hedged shard requests: parity, budget, no leaks.

The straggler model: one searcher (shard 1) stalls every other SEARCH
request (``slow_every=2``) -- a per-request pause (GC, queueing), not a
uniformly slow machine -- so a hedge re-issued on a second connection
lands on a fast slot.  With strictly sequential requests the injection
is deterministic: every *primary* RPC to the slow shard hits a slow
slot and every hedge hits a fast one, which lets the tests pin exact
hedge counts.

Invariants under test:

- hedged results are bit-identical to unhedged and to in-process
  serving (hedging changes *when* an answer arrives, never *what*);
- a hedge never fires once the request deadline has passed, and a
  hedge that fires in time but cannot answer in time does not rescue
  the shard (degrade semantics unchanged);
- cancelled losers discard their connections -- pool occupancy stays
  bounded and close() drains to zero open sockets;
- ``stats()["hedges"]`` / ``["hedge_wins"]`` count correctly;
- the async fan-out holds every in-flight shard RPC with O(1) threads
  (one loop thread, no pool thread per RPC).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.core.merge import merge_shard_results_batch
from repro.net.server import SearcherServer
from repro.net.transport import AsyncRemoteSearcherTransport
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode
from repro.online.service import OnlineService
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index
from tests.conftest import FAST_HNSW, make_clustered

NUM_SHARDS = 3
SLOW_SHARD = 1
SLOW_DELAY_S = 0.4
INDEX_PATH = "prod/hedged"


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=NUM_SHARDS,
        num_segments=1,
        segmenter="rs",
        hnsw=FAST_HNSW,
        segmenter_sample_size=400,
        seed=11,
    )


@pytest.fixture(scope="module")
def corpus():
    return make_clustered(540, 16, seed=12)


@pytest.fixture(scope="module")
def queries(corpus):
    rng = np.random.default_rng(13)
    rows = rng.integers(0, corpus.shape[0], size=12)
    noise = rng.normal(scale=0.2, size=(12, corpus.shape[1]))
    return (corpus[rows] + noise).astype(np.float32)


@pytest.fixture(scope="module")
def shared_fs(tmp_path_factory):
    return LocalHdfs(tmp_path_factory.mktemp("hedge-hdfs"))


@pytest.fixture(scope="module")
def index(corpus, config, shared_fs):
    built = build_lanns_index(corpus, config=config)
    save_lanns_index(built, shared_fs, INDEX_PATH)
    return built


@pytest.fixture(scope="module")
def baseline(index, config):
    """In-process broker: the bit-parity reference."""
    nodes = [SearcherNode(shard_id) for shard_id in range(NUM_SHARDS)]
    for shard_id, node in enumerate(nodes):
        node.host("hedge", index.shards[shard_id])
    broker = Broker(nodes, config)
    yield broker
    broker.close()


@pytest.fixture
def fleet(index):
    """Fresh in-thread servers per test: shard 1 is the straggler.

    Function-scoped on purpose -- the straggler injection counts SEARCH
    frames, so sharing servers across tests would make slow/fast slots
    depend on test order.
    """
    servers = []
    for shard_id in range(NUM_SHARDS):
        slow = shard_id == SLOW_SHARD
        server = SearcherServer(
            SearcherNode(shard_id),
            slow_every=2 if slow else 0,
            slow_delay_s=SLOW_DELAY_S if slow else 0.0,
        ).start_in_thread()
        server.node.host("hedge", index.shards[shard_id])
        servers.append(server)
    yield servers
    for server in servers:
        server.stop()


def make_transports(servers, **kwargs):
    return [
        AsyncRemoteSearcherTransport(server.address, shard_id, **kwargs)
        for shard_id, server in enumerate(servers)
    ]


def close_all(broker, transports):
    broker.close()
    for transport in transports:
        transport.close()


class TestHedgedParity:
    def test_hedged_results_bit_identical_and_hedges_counted(
        self, fleet, config, queries, baseline
    ):
        """Sequential batches through the straggler fleet: every primary
        to the slow shard stalls, every hedge wins, and ids+distances
        stay bit-identical to in-process serving."""
        want_ids, want_dists = baseline.search_batch("hedge", queries, 10)
        transports = make_transports(fleet)
        broker = Broker(
            transports,
            config,
            async_fanout=True,
            hedge_after_s=0.05,
            request_timeout_s=30.0,
        )
        try:
            got_ids, got_dists = broker.search_batch("hedge", queries, 10)
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_array_equal(got_dists, want_dists)
            assert broker.stats()["hedges"] == 1
            assert broker.stats()["hedge_wins"] == 1

            # Second batch: the hedge cycle repeats deterministically.
            got_ids, got_dists = broker.search_batch("hedge", queries, 10)
            np.testing.assert_array_equal(got_ids, want_ids)
            assert broker.stats()["hedges"] == 2

            # Single-query path through the same hedged fan-out.
            one_ids, one_dists = broker.search("hedge", queries[0], 10)
            valid = want_ids[0] >= 0
            np.testing.assert_array_equal(one_ids, want_ids[0][valid])
            np.testing.assert_array_equal(one_dists, want_dists[0][valid])
            assert broker.stats()["hedges"] == 3
        finally:
            close_all(broker, transports)

    def test_unhedged_async_fanout_waits_for_straggler(
        self, fleet, config, queries, baseline
    ):
        """Without hedging the async fan-out still serves bit-identical
        results -- it just eats the straggler's stall."""
        want_ids, want_dists = baseline.search_batch("hedge", queries, 10)
        transports = make_transports(fleet)
        broker = Broker(transports, config, async_fanout=True)
        try:
            begin = time.perf_counter()
            got_ids, got_dists = broker.search_batch("hedge", queries, 10)
            elapsed = time.perf_counter() - begin
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_array_equal(got_dists, want_dists)
            assert broker.stats()["hedges"] == 0
            assert elapsed >= SLOW_DELAY_S * 0.8, (
                "first request to the straggler shard must have stalled"
            )
        finally:
            close_all(broker, transports)

    def test_hedged_concurrent_stress_parity(
        self, fleet, config, queries, baseline
    ):
        """Concurrent single-row clients through a hedged micro-batching
        broker: every answer bit-identical, no errors, hedges observed."""
        expected = [
            baseline.search("hedge", query, 8) for query in queries
        ]
        transports = make_transports(fleet, pool_size=4)
        broker = Broker(
            transports,
            config,
            async_fanout=True,
            hedge_after_s=0.05,
            request_timeout_s=30.0,
            max_batch=4,
            max_wait_ms=5.0,
        )
        errors: list[BaseException] = []

        def client(worker: int) -> None:
            try:
                for row in range(worker, queries.shape[0], 4):
                    ids, dists = broker.search("hedge", queries[row], 8)
                    np.testing.assert_array_equal(ids, expected[row][0])
                    np.testing.assert_array_equal(dists, expected[row][1])
            except BaseException as exc:
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=client, args=(worker,), daemon=True)
                for worker in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not any(thread.is_alive() for thread in threads)
            assert not errors, f"concurrent hedged client failed: {errors[0]}"
            # The slow server's first SEARCH frame stalls whoever owns
            # it, so at least one hedge must have fired.
            assert broker.stats()["hedges"] >= 1
        finally:
            close_all(broker, transports)


class TestHedgeDeadlineBudget:
    def test_hedge_never_fires_after_request_deadline(
        self, fleet, config, queries, index
    ):
        """Deadline below the hedge delay: the straggler shard times out
        and degrades, and no hedge is ever issued."""
        # Every request to the slow shard stalls well past the deadline.
        fleet[SLOW_SHARD].slow_every = 1
        fleet[SLOW_SHARD].slow_delay_s = 2.0
        probe = queries[:4]
        transports = make_transports(fleet, retries=0)
        broker = Broker(
            transports,
            config,
            async_fanout=True,
            hedge_after_s=0.5,
            request_timeout_s=0.3,
            partial_policy="degrade",
        )
        try:
            ids, dists, info = broker.search_batch(
                "hedge", probe, 10, with_info=True
            )
            assert (info["shards_answered"] == NUM_SHARDS - 1).all()
            assert broker.stats()["hedges"] == 0, (
                "a hedge fired although the deadline precedes the delay"
            )
            budget = broker.per_shard_budget(10)
            parts = [
                index.shards[shard].search_batch(probe, budget)
                for shard in range(NUM_SHARDS)
                if shard != SLOW_SHARD
            ]
            want_ids, want_dists = merge_shard_results_batch(parts, 10)
            np.testing.assert_array_equal(ids, want_ids)
            np.testing.assert_array_equal(dists, want_dists)
        finally:
            close_all(broker, transports)

    def test_in_time_hedge_cannot_rescue_past_deadline(
        self, fleet, config, queries, index
    ):
        """A hedge issued in time against a shard whose every request
        stalls: both RPCs miss the deadline, the shard degrades, and the
        hedge is still counted (it fired before the deadline)."""
        fleet[SLOW_SHARD].slow_every = 1
        fleet[SLOW_SHARD].slow_delay_s = 2.0
        probe = queries[:4]
        transports = make_transports(fleet, retries=0)
        broker = Broker(
            transports,
            config,
            async_fanout=True,
            hedge_after_s=0.1,
            request_timeout_s=0.4,
            partial_policy="degrade",
        )
        try:
            _, _, info = broker.search_batch(
                "hedge", probe, 10, with_info=True
            )
            assert (info["shards_answered"] == NUM_SHARDS - 1).all()
            stats = broker.stats()
            assert stats["hedges"] == 1
            assert stats["hedge_wins"] == 0
        finally:
            close_all(broker, transports)


class TestConnectionHygiene:
    def test_cancelled_losers_do_not_leak_connections(
        self, fleet, config, queries
    ):
        """Each batch hedges the straggler and cancels the losing
        primary; its connection must be discarded, not pooled, and the
        open-socket gauge must stay bounded by the pool size."""
        transports = make_transports(fleet)
        broker = Broker(
            transports,
            config,
            async_fanout=True,
            hedge_after_s=0.05,
            request_timeout_s=30.0,
        )
        try:
            for _ in range(5):
                broker.search_batch("hedge", queries[:4], 10)
            assert broker.stats()["hedges"] == 5
            slow_client = transports[SLOW_SHARD].async_client
            assert slow_client.open_connections <= slow_client.pool_size, (
                f"{slow_client.open_connections} sockets open after 5 "
                f"hedged batches (pool_size={slow_client.pool_size})"
            )
        finally:
            close_all(broker, transports)
        for transport in transports:
            assert transport.async_client.open_connections == 0, (
                "close() must drain every pooled connection"
            )

    def test_dead_loop_pools_reaped_across_broker_cycles(
        self, fleet, config, queries
    ):
        """Transports outlive brokers (deploy/undeploy cycles): pooled
        connections keyed by a closed broker's loop must be reaped, not
        leak pool_size sockets per searcher per cycle."""
        transports = make_transports(fleet)
        try:
            for _ in range(3):
                broker = Broker(
                    transports,
                    config,
                    async_fanout=True,
                    request_timeout_s=30.0,
                )
                broker.search_batch("hedge", queries[:2], 5)
                broker.close()
            broker = Broker(
                transports, config, async_fanout=True, request_timeout_s=30.0
            )
            broker.search_batch("hedge", queries[:2], 5)
            try:
                for transport in transports:
                    client = transport.async_client
                    assert (
                        client.open_connections <= client.pool_size
                    ), (
                        f"{client.open_connections} sockets open after 4 "
                        "broker generations over one transport"
                    )
            finally:
                broker.close()
        finally:
            for transport in transports:
                transport.close()
        for transport in transports:
            assert transport.async_client.open_connections == 0

    def test_async_fanout_uses_one_loop_thread(self, fleet, config, queries):
        """O(1) threads for N in-flight remote RPCs: the async broker
        adds exactly one thread (the loop), never a fan-out pool."""
        before = set(threading.enumerate())
        transports = make_transports(fleet)
        broker = Broker(
            transports,
            config,
            async_fanout=True,
            hedge_after_s=0.05,
            request_timeout_s=30.0,
        )
        try:
            broker.search_batch("hedge", queries[:4], 10)
            added = [
                thread.name
                for thread in threading.enumerate()
                if thread not in before and thread.name.startswith("broker-")
            ]
            assert added == ["broker-async-loop"], added
            assert broker._pool is None
            assert broker.stats()["fanout_workers"] == 0
            assert broker.stats()["async_fanout"] is True
        finally:
            close_all(broker, transports)
        alive = [
            thread.name
            for thread in threading.enumerate()
            if thread not in before and thread.name.startswith("broker-")
        ]
        assert not [name for name in alive], (
            f"loop thread survived close(): {alive}"
        )


class TestServiceIntegration:
    def test_service_async_fanout_hedged_end_to_end(
        self, shared_fs, fleet, queries, index
    ):
        """OnlineService wiring: deploy over RPC onto the straggler
        fleet with async fan-out + hedging, parity against an in-process
        service, stats surfaced, clean undeploy."""
        addresses = [server.address for server in fleet]
        local = OnlineService()
        remote = OnlineService(
            searchers=addresses,
            async_fanout=True,
            hedge_after_s=0.05,
            request_timeout_s=30.0,
        )
        try:
            local.deploy(shared_fs, INDEX_PATH, index_name="svc")
            remote.deploy(shared_fs, INDEX_PATH, index_name="svc")
            assert isinstance(
                remote.searchers[0], AsyncRemoteSearcherTransport
            )
            want_ids, want_dists = local.query_batch(
                queries, 10, index_name="svc"
            )
            got_ids, got_dists, info = remote.query_batch(
                queries, 10, index_name="svc", with_info=True
            )
            np.testing.assert_array_equal(got_ids, want_ids)
            np.testing.assert_array_equal(got_dists, want_dists)
            assert (info["shards_answered"] == NUM_SHARDS).all()
            stats = remote.brokers["svc"].stats()
            assert stats["async_fanout"] is True
            assert stats["hedge_after_s"] == 0.05
            remote.undeploy("svc")
        finally:
            local.close()
            remote.close()

    def test_hedging_requires_async_fanout(self, config):
        nodes = [SearcherNode(shard_id) for shard_id in range(NUM_SHARDS)]
        with pytest.raises(ValueError, match="requires async_fanout"):
            Broker(nodes, config, hedge_after_s=0.1)
        with pytest.raises(ValueError, match="must be positive"):
            Broker(nodes, config, async_fanout=True, hedge_after_s=0.0)

    def test_per_request_hedging_requires_async_fanout(self, index, config):
        """A hedging override on a loop-less broker raises instead of
        being silently ignored (mirrors the constructor validation);
        ``inherit``/``False`` stay valid -- they ask for no hedge."""
        from repro.online.types import SearchRequest

        nodes = [SearcherNode(shard_id) for shard_id in range(NUM_SHARDS)]
        for shard_id, node in enumerate(nodes):
            node.host("hedge", index.shards[shard_id])
        broker = Broker(nodes, config)
        try:
            for override in (0.05, "auto"):
                with pytest.raises(ValueError, match="requires.*async_fanout"):
                    broker.execute(
                        SearchRequest(
                            queries=np.zeros((1, 16), np.float32),
                            top_k=5,
                            index_name="hedge",
                            hedging=override,
                        )
                    )
            response = broker.execute(
                SearchRequest(
                    queries=np.zeros((1, 16), np.float32),
                    top_k=5,
                    index_name="hedge",
                    hedging=False,
                )
            )
            assert response.fully_answered
        finally:
            broker.close()


class TestAdaptiveHedging:
    """hedge_after_s="auto": delay derived from the live shard_rpc window."""

    def make_auto_broker(self, index, config):
        nodes = [SearcherNode(shard_id) for shard_id in range(NUM_SHARDS)]
        for shard_id, node in enumerate(nodes):
            node.host("hedge", index.shards[shard_id])
        return Broker(nodes, config, async_fanout=True, hedge_after_s="auto")

    def test_no_hedging_before_min_samples(self, index, config):
        from repro.online.broker import AUTO_HEDGE_MIN_SAMPLES

        broker = self.make_auto_broker(index, config)
        try:
            for _ in range(AUTO_HEDGE_MIN_SAMPLES - 1):
                broker.timings.record("shard_rpc", 0.01)
            assert broker._resolve_hedge_delay() is None
            broker.timings.record("shard_rpc", 0.01)
            assert broker._resolve_hedge_delay() is not None
        finally:
            broker.close()

    def test_delay_tracks_injected_distribution(self, index, config):
        """The delay follows the *median* of an injected slow-shard mix:
        half the samples straggler-slow must not drag the trigger up."""
        from repro.online.broker import (
            AUTO_HEDGE_MIN_DELAY_S,
            AUTO_HEDGE_MULTIPLIER,
        )

        broker = self.make_auto_broker(index, config)
        try:
            # Healthy shard: tight 5 ms RPCs.
            for _ in range(100):
                broker.timings.record("shard_rpc", 0.005)
            healthy = broker._resolve_hedge_delay()
            assert healthy == pytest.approx(0.005 * AUTO_HEDGE_MULTIPLIER)

            # Inject a straggling shard: just under half the recent
            # window at 250 ms.  The median stays healthy, so the delay
            # must not balloon to straggler scale.
            for _ in range(90):
                broker.timings.record("shard_rpc", 0.25)
            mixed = broker._resolve_hedge_delay()
            assert mixed == pytest.approx(0.005 * AUTO_HEDGE_MULTIPLIER)

            # The fleet genuinely slows down (every sample slow): the
            # delay tracks the new median instead of hedging constantly.
            for _ in range(8192):
                broker.timings.record("shard_rpc", 0.05)
            slowed = broker._resolve_hedge_delay()
            assert slowed == pytest.approx(0.05 * AUTO_HEDGE_MULTIPLIER)
            assert slowed >= AUTO_HEDGE_MIN_DELAY_S
        finally:
            broker.close()

    def test_delay_floor(self, index, config):
        from repro.online.broker import AUTO_HEDGE_MIN_DELAY_S

        broker = self.make_auto_broker(index, config)
        try:
            for _ in range(64):
                broker.timings.record("shard_rpc", 1e-7)
            assert broker._resolve_hedge_delay() == AUTO_HEDGE_MIN_DELAY_S
        finally:
            broker.close()

    def test_static_knob_unchanged(self, index, config):
        nodes = [SearcherNode(shard_id) for shard_id in range(NUM_SHARDS)]
        for shard_id, node in enumerate(nodes):
            node.host("hedge", index.shards[shard_id])
        broker = Broker(nodes, config, async_fanout=True, hedge_after_s=0.07)
        try:
            broker.timings.record("shard_rpc", 5.0)
            assert broker._resolve_hedge_delay() == 0.07
        finally:
            broker.close()

    def test_validation(self, index, config):
        nodes = [SearcherNode(shard_id) for shard_id in range(NUM_SHARDS)]
        for shard_id, node in enumerate(nodes):
            node.host("hedge", index.shards[shard_id])
        with pytest.raises(ValueError, match="auto"):
            Broker(nodes, config, async_fanout=True, hedge_after_s="fast")
        with pytest.raises(ValueError, match="async_fanout"):
            Broker(nodes, config, hedge_after_s="auto")

    def test_auto_end_to_end_with_straggler(self, index, config, queries):
        """Warm the window on an in-process fleet, then verify hedges
        actually fire under "auto" once samples exist, with results
        identical to an unhedged broker."""
        from repro.online.broker import AUTO_HEDGE_MIN_SAMPLES

        class StragglerNode(SearcherNode):
            def __init__(self, shard_id):
                super().__init__(shard_id)
                self.calls = 0

            def search_batch(self, *args, **kwargs):
                self.calls += 1
                if self.shard_id == SLOW_SHARD and self.calls % 2 == 0:
                    time.sleep(0.08)
                return super().search_batch(*args, **kwargs)

        nodes = [StragglerNode(shard_id) for shard_id in range(NUM_SHARDS)]
        for shard_id, node in enumerate(nodes):
            node.host("hedge", index.shards[shard_id])
        broker = Broker(nodes, config, async_fanout=True, hedge_after_s="auto")
        reference = Broker(
            [SearcherNode(s) for s in range(NUM_SHARDS)], config
        )
        for shard_id, transport in enumerate(reference.searchers):
            transport.host("hedge", index.shards[shard_id])
        try:
            # Warm-up: fill the shard_rpc window (no hedging yet).
            warm = queries[:2]
            while (
                (broker.timings.quantile("shard_rpc", 0.5) or (0, 0.0))[0]
                < AUTO_HEDGE_MIN_SAMPLES
            ):
                broker.search_batch("hedge", warm, 5)
            assert broker.hedges == 0  # in-process shards cannot hedge...
            delay = broker._resolve_hedge_delay()
            assert delay is not None and delay < 0.08
            ids, dists = broker.search_batch("hedge", queries, 5)
            want_ids, want_dists = reference.search_batch(
                "hedge", queries, 5
            )
            assert np.array_equal(ids, want_ids)
            assert np.array_equal(dists, want_dists)
        finally:
            broker.close()
            reference.close()

    def test_service_accepts_auto(self, index, config, shared_fs):
        service = OnlineService(async_fanout=True, hedge_after_s="auto")
        try:
            service.deploy(shared_fs, INDEX_PATH, index_name="auto-svc")
            stats = service.stats()
            broker_stats = stats["indices"]["auto-svc"]
            assert broker_stats["hedge_after_s"] == "auto"
        finally:
            service.close()
