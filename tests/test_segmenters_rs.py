"""Tests for the Random Segmenter and the segmenter registry."""

import numpy as np
import pytest

from repro.segmenters.base import (
    get_segmenter_class,
    registered_kinds,
    segmenter_from_dict,
)
from repro.segmenters.random_segmenter import RandomSegmenter


class TestRegistry:
    def test_all_kinds_registered(self):
        assert registered_kinds() == ["apd", "context", "kmeans", "rh", "rs"]

    def test_lookup(self):
        assert get_segmenter_class("rs") is RandomSegmenter

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown segmenter"):
            get_segmenter_class("nope")

    def test_from_dict_requires_kind(self):
        with pytest.raises(ValueError, match="kind"):
            segmenter_from_dict({"num_segments": 4})


class TestRandomSegmenter:
    def test_always_fitted(self):
        segmenter = RandomSegmenter(4)
        assert segmenter.is_fitted
        assert segmenter.fit(np.ones((2, 3))) is segmenter

    def test_invalid_num_segments(self):
        with pytest.raises(ValueError):
            RandomSegmenter(0)

    def test_data_routed_to_single_segment(self, clustered_data):
        segmenter = RandomSegmenter(8, seed=1)
        routes = segmenter.route_data_batch(clustered_data)
        assert all(len(route) == 1 for route in routes)
        assert all(0 <= route[0] < 8 for route in routes)

    def test_assignment_roughly_uniform(self, clustered_data):
        segmenter = RandomSegmenter(4, seed=2)
        routes = segmenter.route_data_batch(clustered_data)
        counts = np.bincount([route[0] for route in routes], minlength=4)
        expected = len(clustered_data) / 4
        assert (np.abs(counts - expected) < 4 * np.sqrt(expected)).all()

    def test_queries_fan_out_to_all_segments(self, clustered_queries):
        segmenter = RandomSegmenter(5, seed=0)
        routes = segmenter.route_query_batch(clustered_queries)
        assert all(route == (0, 1, 2, 3, 4) for route in routes)

    def test_single_point_routing(self, clustered_data):
        segmenter = RandomSegmenter(4, seed=3)
        route = segmenter.route_data(clustered_data[0])
        assert len(route) == 1

    def test_serialization_roundtrip_preserves_stream(self, clustered_data):
        segmenter = RandomSegmenter(4, seed=5)
        segmenter.route_data_batch(clustered_data[:10])
        payload = segmenter.to_dict()
        restored = segmenter_from_dict(payload)
        # Both should produce the identical *next* batch of assignments.
        original_next = segmenter.route_data_batch(clustered_data[10:20])
        restored_next = restored.route_data_batch(clustered_data[10:20])
        assert original_next == restored_next

    def test_determinism_across_instances(self, clustered_data):
        a = RandomSegmenter(4, seed=7)
        b = RandomSegmenter(4, seed=7)
        assert a.route_data_batch(clustered_data[:50]) == (
            b.route_data_batch(clustered_data[:50])
        )

    def test_different_seeds_differ(self, clustered_data):
        a = RandomSegmenter(4, seed=1)
        b = RandomSegmenter(4, seed=2)
        assert a.route_data_batch(clustered_data[:50]) != (
            b.route_data_batch(clustered_data[:50])
        )
