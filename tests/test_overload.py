"""Overload-safety tests: admission, deadlines, abandonment, shutdown.

The server-side half of PR 10, pinned against a real in-thread asyncio
searcher (raw sockets where the client library would get in the way):

- a saturated searcher sheds surplus SEARCH frames instantly with a
  structured ``OVERLOADED`` error carrying the configured retry-after
  hint -- and serves normally again the moment load drops;
- a request whose ``deadline_ms`` budget is spent -- on arrival or
  while queued for admission -- is rejected with
  ``DeadlineExceededError`` instead of executing for nobody;
- a client that hangs up mid-request has its in-flight work abandoned
  (counted, not computed);
- server-side micro-batching coalesces SEARCH frames from *different*
  connections into one lockstep batch with bit-identical results;
- ``SearcherServer.stop()`` raises instead of silently leaking a thread
  that outlives ``join(timeout)``;
- client reconnect backoff is full jitter, deterministic per seed;
- the broker treats ``OVERLOADED`` as failover-eligible and honors
  retry-after hints at most once, within the deadline budget.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    OverloadedError,
    RemoteCallError,
)
from repro.net.client import AsyncRemoteSearcherClient, RemoteSearcherClient
from repro.net.protocol import MsgType, raise_if_error, recv_frame, send_frame
from repro.net.server import SearcherServer
from repro.online.broker import Broker
from repro.online.searcher import SearcherNode
from repro.storage.hdfs import LocalHdfs
from repro.storage.manifest import save_lanns_index
from tests.conftest import FAST_HNSW, make_clustered

INDEX_PATH = "prod/overload"
INDEX_NAME = "r"


@pytest.fixture(scope="module")
def shared_fs(tmp_path_factory):
    return LocalHdfs(tmp_path_factory.mktemp("overload-hdfs"))


@pytest.fixture(scope="module")
def queries(index):
    rng = np.random.default_rng(23)
    return rng.normal(size=(4, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def index(shared_fs):
    corpus = make_clustered(400, 16, seed=29)
    config = LannsConfig(
        num_shards=1,
        num_segments=2,
        segmenter="rh",
        hnsw=FAST_HNSW,
        segmenter_sample_size=300,
        seed=7,
    )
    built = build_lanns_index(corpus, config=config)
    save_lanns_index(built, shared_fs, INDEX_PATH)
    return built


def start_server(shared_fs, **kwargs) -> SearcherServer:
    server = SearcherServer(
        SearcherNode(0), root=str(shared_fs.root), **kwargs
    ).start_in_thread()
    client = RemoteSearcherClient(server.address, retries=0)
    try:
        client.deploy(INDEX_NAME, INDEX_PATH)
    finally:
        client.close()
    return server


def raw_search(
    address: str,
    queries: np.ndarray,
    *,
    deadline_ms: float | None = None,
    timeout_s: float = 10.0,
):
    """One SEARCH over a bare socket; returns or raises like the client."""
    header: dict = {"index": INDEX_NAME, "top_k": 3}
    if deadline_ms is not None:
        header["deadline_ms"] = float(deadline_ms)
    host, port = address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=timeout_s) as s:
        send_frame(s, MsgType.SEARCH, header, (queries,))
        msg_type, reply, arrays = recv_frame(s)
    raise_if_error(msg_type, reply)
    return arrays


def occupy_slot(server: SearcherServer, queries: np.ndarray):
    """Issue one search on a helper thread; wait until it is executing."""
    seen_before = server.searches_seen
    client = RemoteSearcherClient(server.address, retries=0)

    def request():
        try:
            client.search_batch(INDEX_NAME, queries[:1], 3)
        finally:
            client.close()

    thread = threading.Thread(target=request)
    thread.start()
    deadline = time.monotonic() + 5.0
    while server.searches_seen == seen_before:
        if time.monotonic() > deadline:
            raise TimeoutError("helper request never reached the server")
        time.sleep(0.005)
    return thread


class TestAdmission:
    def test_saturated_searcher_sheds_with_retry_after(
        self, shared_fs, index, queries
    ):
        server = start_server(
            shared_fs,
            max_in_flight=1,
            queue_cap=0,
            retry_after_s=0.123,
            slow_every=1,
            slow_delay_s=0.5,
        )
        try:
            holder = occupy_slot(server, queries)
            with pytest.raises(OverloadedError, match="capacity") as excinfo:
                raw_search(server.address, queries[:1])
            assert excinfo.value.retry_after_s == 0.123
            holder.join(timeout=10)
            # Load gone: the very next request is admitted and served.
            ids, dists = raw_search(server.address, queries[:1])
            assert ids.shape == (1, 3)
            assert server.searches_shed == 1
        finally:
            server.stop()

    def test_admission_disabled_by_default(self, shared_fs, index, queries):
        server = start_server(shared_fs, slow_every=1, slow_delay_s=0.2)
        try:
            holders = [occupy_slot(server, queries) for _ in range(2)]
            # No admission bound: a third concurrent request executes
            # rather than shedding.
            ids, _ = raw_search(server.address, queries[:1])
            assert ids.shape == (1, 3)
            for holder in holders:
                holder.join(timeout=10)
            assert server.searches_shed == 0
        finally:
            server.stop()

    def test_stats_surface_admission_counters(
        self, shared_fs, index, queries
    ):
        server = start_server(shared_fs, max_in_flight=2, queue_cap=5)
        client = RemoteSearcherClient(server.address, retries=0)
        try:
            client.search_batch(INDEX_NAME, queries, 3)
            admission = client.stats()["admission"]
            assert admission["max_in_flight"] == 2
            assert admission["queue_cap"] == 5
            assert admission["searches_shed"] == 0
            assert admission["searches_expired"] == 0
            assert admission["searches_abandoned"] == 0
        finally:
            client.close()
            server.stop()

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            SearcherServer(SearcherNode(0), max_in_flight=-1)
        with pytest.raises(ValueError, match="retry_after_s"):
            SearcherServer(SearcherNode(0), retry_after_s=-0.1)
        with pytest.raises(ValueError, match="batch_max"):
            SearcherServer(SearcherNode(0), batch_max=0)


class TestDeadlinePropagation:
    def test_expired_on_arrival_rejected(self, shared_fs, index, queries):
        server = start_server(shared_fs)
        try:
            with pytest.raises(DeadlineExceededError, match="arrival"):
                raw_search(server.address, queries[:1], deadline_ms=0.0)
            assert server.searches_expired == 1
            # A healthy budget still serves.
            ids, _ = raw_search(
                server.address, queries[:1], deadline_ms=5000.0
            )
            assert ids.shape == (1, 3)
        finally:
            server.stop()

    def test_budget_spent_queueing_rejected(self, shared_fs, index, queries):
        server = start_server(
            shared_fs,
            max_in_flight=1,
            queue_cap=1,
            slow_every=1,
            slow_delay_s=0.4,
        )
        try:
            holder = occupy_slot(server, queries)
            # Queued behind a 0.4s stall with only 50ms of budget: the
            # slot arrives after the client has already given up.
            with pytest.raises(DeadlineExceededError, match="waiting"):
                raw_search(server.address, queries[:1], deadline_ms=50.0)
            holder.join(timeout=10)
            assert server.searches_expired == 1
            assert server.searches_shed == 0
        finally:
            server.stop()

    def test_client_ships_remaining_budget(self, shared_fs, index, queries):
        """An expired client-side deadline reaches the server as ~0ms
        remaining budget and is rejected server-side, not executed."""
        server = start_server(shared_fs)
        client = RemoteSearcherClient(server.address, retries=0)
        try:
            before = server.node.stats()["requests_served"]
            with pytest.raises(DeadlineExceededError):
                client.search_batch(
                    INDEX_NAME,
                    queries[:1],
                    3,
                    deadline=time.monotonic() + 1e-9,
                )
            assert server.node.stats()["requests_served"] == before
        finally:
            client.close()
            server.stop()


class TestHangupAbandonment:
    def test_disconnect_mid_request_abandons_work(
        self, shared_fs, index, queries
    ):
        server = start_server(shared_fs, slow_every=1, slow_delay_s=0.5)
        try:
            host, port = server.address.rsplit(":", 1)
            with socket.create_connection((host, int(port))) as s:
                send_frame(
                    s,
                    MsgType.SEARCH,
                    {"index": INDEX_NAME, "top_k": 3},
                    (queries[:1],),
                )
                # Wait for the server to start the stalled search, then
                # hang up -- a cancelled hedge loser, in miniature.
                deadline = time.monotonic() + 5.0
                while server.searches_seen == 0:
                    if time.monotonic() > deadline:
                        raise TimeoutError("request never arrived")
                    time.sleep(0.005)
            deadline = time.monotonic() + 5.0
            while server.searches_abandoned == 0:
                if time.monotonic() > deadline:
                    raise TimeoutError("hang-up never abandoned the work")
                time.sleep(0.005)
            assert server.searches_abandoned == 1
            # The server survives the abandonment and keeps serving.
            ids, _ = raw_search(server.address, queries[:1])
            assert ids.shape == (1, 3)
        finally:
            server.stop()


class TestServerSideMicroBatch:
    def test_coalesces_across_connections_bit_identically(
        self, shared_fs, index, queries
    ):
        server = start_server(shared_fs, batch_max=4, batch_wait_ms=250.0)
        want_ids, want_dists = index.shards[0].search_batch(queries[:3], 3)
        barrier = threading.Barrier(3)
        results: list = [None] * 3
        errors: list = []

        def request(slot: int) -> None:
            client = RemoteSearcherClient(server.address, retries=0)
            try:
                barrier.wait(timeout=10)
                results[slot] = client.search_batch(
                    INDEX_NAME, queries[slot : slot + 1], 3
                )
            except BaseException as exc:
                errors.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=request, args=(slot,))
            for slot in range(3)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, f"batched request failed: {errors[:1]!r}"
            for slot, (ids, dists) in enumerate(results):
                np.testing.assert_array_equal(
                    ids, want_ids[slot : slot + 1]
                )
                np.testing.assert_array_equal(
                    dists, want_dists[slot : slot + 1]
                )
            stats = RemoteSearcherClient(server.address, retries=0)
            try:
                batch = stats.stats()["server_microbatch"]
            finally:
                stats.close()
            assert batch["rows_executed"] == 3
            assert batch["largest_batch"] >= 2, (
                "three simultaneous frames never coalesced"
            )
        finally:
            server.stop()

    def test_requests_with_extras_bypass_the_batcher(
        self, shared_fs, index, queries
    ):
        server = start_server(shared_fs, batch_max=4, batch_wait_ms=5.0)
        client = RemoteSearcherClient(server.address, retries=0)
        try:
            info: dict = {}
            client.search_batch(
                INDEX_NAME, queries[:2], 3, collect_cost=True, info_out=info
            )
            assert info.get("cost"), "cost accounting lost server-side"
            batch = client.stats()["server_microbatch"]
            assert batch["rows_admitted"] == 0
        finally:
            client.close()
            server.stop()


class TestShutdownRaises:
    def test_stop_raises_when_thread_survives_join(self):
        server = SearcherServer(SearcherNode(0))
        wedged = threading.Thread(target=time.sleep, args=(5.0,), daemon=True)
        wedged.start()
        server._thread = wedged
        with pytest.raises(TimeoutError, match="still alive"):
            server.stop(timeout=0.05)

    def test_stop_is_idempotent_after_clean_shutdown(self, shared_fs):
        server = SearcherServer(
            SearcherNode(0), root=str(shared_fs.root)
        ).start_in_thread()
        server.stop()
        server.stop()  # second stop: no thread left, no raise


class TestBackoffJitter:
    def test_jitter_is_deterministic_per_seed_and_bounded(self):
        first = RemoteSearcherClient("127.0.0.1:1", backoff_seed=7)
        second = RemoteSearcherClient("127.0.0.1:1", backoff_seed=7)
        other = RemoteSearcherClient("127.0.0.1:1", backoff_seed=8)
        try:
            draws_a = [first._jitter(0.2) for _ in range(16)]
            draws_b = [second._jitter(0.2) for _ in range(16)]
            assert draws_a == draws_b
            assert all(0.0 <= draw <= 0.2 for draw in draws_a)
            assert draws_a != [other._jitter(0.2) for _ in range(16)]
        finally:
            first.close()
            second.close()
            other.close()

    def test_sync_and_async_clients_share_the_address_default_seed(self):
        sync = RemoteSearcherClient("127.0.0.1:1")
        async_ = AsyncRemoteSearcherClient("127.0.0.1:1")
        try:
            assert [sync._jitter(1.0) for _ in range(8)] == [
                async_._jitter(1.0) for _ in range(8)
            ]
        finally:
            sync.close()

    def test_retries_actually_draw_jittered_pauses(self):
        client = RemoteSearcherClient(
            "127.0.0.1:1",
            retries=2,
            backoff_s=0.01,
            backoff_seed=3,
            connect_timeout_s=0.2,
        )
        try:
            with pytest.raises(ConnectionLostError):
                client.ping()
            assert client.retried == 2
        finally:
            client.close()


class TestBrokerOverloadPolicy:
    def test_overloaded_is_failover_eligible(self):
        assert Broker._failover_eligible(OverloadedError("full"))
        assert not Broker._failover_eligible(
            RemoteCallError("ValueError", "boom")
        )

    def test_retry_after_pause_honored_once_within_budget(self):
        shed = OverloadedError("full", retry_after_s=0.05)
        assert Broker._retry_after_pause(shed, None, False) == 0.05
        # Only once per request.
        assert Broker._retry_after_pause(shed, None, True) is None
        # Only for overload, and only with a hint.
        assert Broker._retry_after_pause(None, None, False) is None
        assert (
            Broker._retry_after_pause(
                OverloadedError("no hint"), None, False
            )
            is None
        )
        # The hint must fit the remaining deadline budget.
        tight = time.monotonic() + 0.01
        roomy = time.monotonic() + 10.0
        assert Broker._retry_after_pause(shed, tight, False) is None
        assert Broker._retry_after_pause(shed, roomy, False) == 0.05
