"""Tests for ShardIndex / LannsIndex: routing, merging, correctness."""

import numpy as np
import pytest

from repro.core.builder import build_lanns_index
from repro.core.config import LannsConfig
from repro.core.index import LannsIndex, ShardIndex
from repro.core.merge import merge_segment_results, merge_shard_results
from repro.errors import IndexNotBuiltError
from repro.hnsw.index import build_hnsw
from repro.segmenters.random_segmenter import RandomSegmenter
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def config():
    return LannsConfig(
        num_shards=2,
        num_segments=4,
        segmenter="apd",
        hnsw=FAST_HNSW,
        segmenter_sample_size=600,
        seed=5,
    )


@pytest.fixture(scope="module")
def lanns(clustered_data, config):
    return build_lanns_index(clustered_data, config=config)


class TestMergeFunctions:
    def test_segment_merge_dedupes(self):
        merged = merge_segment_results([[(2.0, 5)], [(1.0, 5), (3.0, 6)]], 2)
        assert merged == [(1.0, 5), (3.0, 6)]

    def test_shard_merge_global_topk(self):
        merged = merge_shard_results(
            [[(4.0, 1), (5.0, 2)], [(1.0, 3)], [(2.0, 4)]], 3
        )
        assert merged == [(1.0, 3), (2.0, 4), (4.0, 1)]


class TestShardIndex:
    def test_segment_count_must_match_segmenter(self, clustered_data):
        segment = build_hnsw(clustered_data[:50], params=FAST_HNSW)
        with pytest.raises(ValueError, match="segment"):
            ShardIndex(0, [segment], RandomSegmenter(2))

    def test_search_probes_routed_segments(self, lanns, clustered_queries):
        shard = lanns.shards[0]
        probed = shard.probed_segments(clustered_queries[0])
        assert len(probed) >= 1
        results = shard.search(clustered_queries[0], 5)
        assert len(results) <= 5
        dists = [dist for dist, _ in results]
        assert dists == sorted(dists)

    def test_len_counts_all_segments(self, lanns):
        shard = lanns.shards[0]
        assert len(shard) == sum(shard.segment_sizes)


class TestLannsIndex:
    def test_every_point_stored_exactly_once_virtual(self, lanns, clustered_data):
        assert len(lanns) == len(clustered_data)

    def test_stats_shape(self, lanns, config):
        stats = lanns.stats()
        assert stats["partitioning"] == (2, 4)
        assert len(stats["shard_sizes"]) == 2
        assert all(len(sizes) == 4 for sizes in stats["segment_sizes"])
        assert sum(stats["shard_sizes"]) == len(lanns)

    def test_query_matches_exact_on_clustered_data(
        self, lanns, clustered_queries, clustered_truth
    ):
        hits = 0
        for query, truth in zip(clustered_queries, clustered_truth):
            ids, _ = lanns.query(query, 10, ef=64)
            hits += len(set(ids.tolist()) & set(truth[:10].tolist()))
        assert hits / (len(clustered_queries) * 10) >= 0.9

    def test_query_returns_sorted_distances(self, lanns, clustered_queries):
        _, dists = lanns.query(clustered_queries[0], 10)
        assert np.all(np.diff(dists) >= -1e-12)

    def test_query_finds_stored_point(self, lanns, clustered_data):
        ids, dists = lanns.query(clustered_data[42], 1, ef=48)
        assert ids[0] == 42
        # float32 norm cancellation leaves ~1e-3-scale noise on the
        # self-distance; anything near zero is correct.
        assert dists[0] == pytest.approx(0.0, abs=2e-2)

    def test_invalid_topk(self, lanns, clustered_queries):
        with pytest.raises(ValueError):
            lanns.query(clustered_queries[0], 0)

    def test_query_batch_matches_single(self, lanns, clustered_queries):
        batch_ids, _ = lanns.query_batch(clustered_queries[:5], 7, ef=48)
        for row in range(5):
            single_ids, _ = lanns.query(clustered_queries[row], 7, ef=48)
            np.testing.assert_array_equal(
                batch_ids[row][: len(single_ids)], single_ids
            )

    def test_shard_count_validated(self, lanns, config):
        with pytest.raises(ValueError, match="shards"):
            LannsIndex(config, lanns.shards[:1], lanns.segmenter)

    def test_empty_index_query_rejected(self, clustered_data, config):
        empty = build_lanns_index(clustered_data[:0], config=LannsConfig())
        with pytest.raises(IndexNotBuiltError):
            empty.query(clustered_data[0], 5)

    def test_per_shard_budget_respects_flag(self, clustered_data):
        config = LannsConfig(
            num_shards=4,
            hnsw=FAST_HNSW,
            use_per_shard_topk=False,
        )
        index = build_lanns_index(clustered_data[:200], config=config)
        assert index.per_shard_budget(100) == 100
        config_on = config.with_updates(use_per_shard_topk=True)
        index_on = build_lanns_index(clustered_data[:200], config=config_on)
        assert index_on.per_shard_budget(100) < 100

    def test_dim_property(self, lanns, clustered_data):
        assert lanns.dim == clustered_data.shape[1]


class TestPhysicalSpill:
    def test_physical_spill_stores_duplicates(self, clustered_data):
        config = LannsConfig(
            num_segments=4,
            segmenter="rh",
            spill_mode="physical",
            alpha=0.15,
            hnsw=FAST_HNSW,
            segmenter_sample_size=600,
        )
        index = build_lanns_index(clustered_data, config=config)
        assert len(index) > len(clustered_data)

    def test_physical_spill_query_returns_unique_ids(self, clustered_data, clustered_queries):
        config = LannsConfig(
            num_segments=4,
            segmenter="rh",
            spill_mode="physical",
            alpha=0.2,
            hnsw=FAST_HNSW,
            segmenter_sample_size=600,
        )
        index = build_lanns_index(clustered_data, config=config)
        for query in clustered_queries[:10]:
            ids, _ = index.query(query, 10)
            assert len(set(ids.tolist())) == len(ids)
